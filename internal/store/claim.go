package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Acquired is the outcome of Acquire: exactly one of Claim and Data is
// set. Data non-nil means another builder already published the entry
// (possibly after we waited for it); Claim non-nil means the caller
// won the build and must Publish or Abandon.
type Acquired struct {
	Claim  *Claim
	Data   []byte
	Waited bool // true if we blocked on another owner's claim
}

// Claim is an exclusive (but optimistic) right to build one entry. The
// holder refreshes the claim file's timestamp in the background; if the
// holding process dies, the refreshes stop and waiters take the claim
// over after StaleAfter.
type Claim struct {
	s         *Store
	kind, key string
	path      string
	stopOnce  sync.Once
	stopBeat  chan struct{}
	beatDone  chan struct{}
}

// Acquire implements the claim → build → publish protocol for (kind,
// key). It returns immediately with Data if the entry exists, or with
// a Claim if this caller should build it. If another builder holds a
// live claim, Acquire waits (polling) until the entry appears or the
// claim goes stale — a stale claim is taken over, never waited on
// forever, so a dead owner costs at most StaleAfter.
func (s *Store) Acquire(kind, key string) (Acquired, error) {
	if err := checkName("kind", kind); err != nil {
		return Acquired{}, err
	}
	if err := checkName("key", key); err != nil {
		return Acquired{}, err
	}
	claimPath := filepath.Join(s.root, "claims", kind+"."+key)
	waited := false
	for {
		if data, ok := s.Get(kind, key); ok {
			return Acquired{Data: data, Waited: waited}, nil
		}
		c, err := s.tryClaim(kind, key, claimPath)
		if err != nil {
			return Acquired{}, err
		}
		if c != nil {
			// Won the claim — but the entry may have been published
			// between our Get and the claim create (the publisher's
			// claim removal racing ours). Re-check before building.
			if data, ok := s.Get(kind, key); ok {
				c.Abandon()
				return Acquired{Data: data, Waited: waited}, nil
			}
			return Acquired{Claim: c}, nil
		}
		// Somebody else holds the claim: wait for the entry or for the
		// claim to go stale.
		waited = true
		time.Sleep(s.opts.PollInterval)
		s.reapStale(claimPath)
	}
}

// tryClaim attempts to create the claim file exclusively. It returns
// (nil, nil) when another owner already holds it.
func (s *Store) tryClaim(kind, key, claimPath string) (*Claim, error) {
	f, err := os.OpenFile(claimPath, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: claim %s/%s: %w", kind, key, err)
	}
	fmt.Fprintf(f, "pid %d\n%s/%s\n", os.Getpid(), kind, key) // diagnostic only
	f.Close()
	c := &Claim{
		s:        s,
		kind:     kind,
		key:      key,
		path:     claimPath,
		stopBeat: make(chan struct{}),
		beatDone: make(chan struct{}),
	}
	go c.heartbeat()
	return c, nil
}

// heartbeat refreshes the claim's timestamp so waiters can tell a live
// owner from a dead one. It stops when the claim is published or
// abandoned.
func (c *Claim) heartbeat() {
	defer close(c.beatDone)
	t := time.NewTicker(c.s.opts.StaleAfter / 4)
	defer t.Stop()
	for {
		select {
		case <-c.stopBeat:
			return
		case <-t.C:
			now := time.Now()
			os.Chtimes(c.path, now, now) // best effort; a failure just ages the claim
		}
	}
}

// reapStale takes over a claim whose owner has stopped refreshing it.
// The takeover is an atomic rename to a unique scratch name: of any
// number of concurrent waiters, exactly one rename succeeds, so a
// stale claim is removed exactly once and the waiters then race to
// re-claim through the normal O_EXCL path.
func (s *Store) reapStale(claimPath string) {
	fi, err := os.Stat(claimPath)
	if err != nil || time.Since(fi.ModTime()) < s.opts.StaleAfter {
		return
	}
	grave := s.tempPath()
	if os.Rename(claimPath, grave) == nil {
		os.Remove(grave)
	}
}

// Publish atomically publishes the built payload and releases the
// claim. Publishing the entry before removing the claim file means no
// waiter can observe "no claim, no entry" and start a redundant build.
func (c *Claim) Publish(payload []byte) error {
	err := c.s.Put(c.kind, c.key, payload)
	c.release()
	return err
}

// Abandon releases the claim without publishing (build failed or the
// entry appeared elsewhere). Waiters will re-race to claim and build.
func (c *Claim) Abandon() { c.release() }

func (c *Claim) release() {
	c.stopOnce.Do(func() {
		close(c.stopBeat)
		<-c.beatDone
		// Removal can legitimately fail if a (pathologically slow)
		// build outlived StaleAfter and a waiter reaped the claim; the
		// publish above still counts and the duplicate build elsewhere
		// produces identical bytes.
		os.Remove(c.path)
	})
}
