package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fastOpts keeps claim-protocol tests quick: stale takeover and polls
// resolve in tens of milliseconds instead of seconds.
var fastOpts = Options{StaleAfter: 80 * time.Millisecond, PollInterval: 5 * time.Millisecond}

func openTest(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "store"), fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t)
	payload := []byte("some artifact bytes \x00\xff")
	if _, ok := s.Get("compile", "abc123"); ok {
		t.Fatal("hit before publish")
	}
	if err := s.Put("compile", "abc123", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("compile", "abc123")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: ok=%v got=%q", ok, got)
	}
	// Distinct kinds do not alias.
	if _, ok := s.Get("layout", "abc123"); ok {
		t.Fatal("entry visible under wrong kind")
	}
	if err := s.Delete("compile", "abc123"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("compile", "abc123"); ok {
		t.Fatal("hit after delete")
	}
	if err := s.Delete("compile", "abc123"); err != nil {
		t.Fatalf("delete of missing entry: %v", err)
	}
}

func TestEmptyPayload(t *testing.T) {
	s := openTest(t)
	if err := s.Put("compile", "0", nil); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("compile", "0")
	if !ok || len(got) != 0 {
		t.Fatalf("empty payload: ok=%v len=%d", ok, len(got))
	}
}

func TestInvalidNamesRejected(t *testing.T) {
	s := openTest(t)
	for _, bad := range []string{"", "tmp", "claims", "../escape", "UPPER", "a/b", "a.b"} {
		if err := s.Put(bad, "aa", []byte("x")); err == nil {
			t.Errorf("Put accepted kind %q", bad)
		}
		if err := s.Put("compile", bad, []byte("x")); err == nil {
			t.Errorf("Put accepted key %q", bad)
		}
		if _, ok := s.Get(bad, "aa"); ok {
			t.Errorf("Get accepted kind %q", bad)
		}
	}
}

// TestCorruptEntryIsMissAndRemoved flips each byte of a stored entry in
// turn: every corruption must read as a miss, and the poisoned file
// must be gone afterwards so a rebuild can publish cleanly.
func TestCorruptEntryIsMissAndRemoved(t *testing.T) {
	s := openTest(t)
	payload := []byte("artifact payload with enough bytes to be interesting")
	path := s.entryPath("compile", "deadbeef")
	if err := s.Put("compile", "deadbeef", payload); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(clean); pos++ {
		mut := append([]byte(nil), clean...)
		mut[pos] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get("compile", "deadbeef"); ok {
			t.Fatalf("bit flip at byte %d read as a hit", pos)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("corrupt entry (flip at %d) not removed: %v", pos, err)
		}
	}
}

func TestTruncatedEntryIsMiss(t *testing.T) {
	s := openTest(t)
	payload := []byte("truncate me")
	path := s.entryPath("compile", "feed")
	if err := s.Put("compile", "feed", payload); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(clean); n++ {
		if err := os.WriteFile(path, clean[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get("compile", "feed"); ok {
			t.Fatalf("truncation to %d/%d bytes read as a hit", n, len(clean))
		}
	}
}

// TestKillMidPublishLeavesOnlyTempDebris simulates a process dying
// after writing its temp file but before the rename: the entry must
// not exist, and GC must sweep the debris once it is stale.
func TestKillMidPublishLeavesOnlyTempDebris(t *testing.T) {
	s := openTest(t)
	tmp := s.tempPath()
	if err := writeFileSync(tmp, encodeEntry([]byte("half-published"))); err != nil {
		t.Fatal(err)
	}
	// The "crashed" publisher never renamed: no entry is visible.
	if _, ok := s.Get("compile", "cafe"); ok {
		t.Fatal("unpublished temp file visible as an entry")
	}
	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("List sees %d entries, want 0", len(entries))
	}
	// Fresh debris is left alone (its writer may still be alive)...
	if st, err := s.GC(0); err != nil || st.TmpRemoved != 0 {
		t.Fatalf("GC removed fresh temp file: %+v err=%v", st, err)
	}
	// ...but stale debris is swept.
	old := time.Now().Add(-2 * s.opts.StaleAfter)
	if err := os.Chtimes(tmp, old, old); err != nil {
		t.Fatal(err)
	}
	st, err := s.GC(0)
	if err != nil || st.TmpRemoved != 1 {
		t.Fatalf("GC of stale temp file: %+v err=%v", st, err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived GC")
	}
}

func TestAcquireBuildPublish(t *testing.T) {
	s := openTest(t)
	a, err := s.Acquire("compile", "11")
	if err != nil {
		t.Fatal(err)
	}
	if a.Claim == nil || a.Data != nil || a.Waited {
		t.Fatalf("first Acquire: %+v", a)
	}
	if err := a.Claim.Publish([]byte("built")); err != nil {
		t.Fatal(err)
	}
	b, err := s.Acquire("compile", "11")
	if err != nil {
		t.Fatal(err)
	}
	if b.Claim != nil || !bytes.Equal(b.Data, []byte("built")) || b.Waited {
		t.Fatalf("second Acquire: %+v", b)
	}
}

func TestAbandonedClaimIsReclaimable(t *testing.T) {
	s := openTest(t)
	a, err := s.Acquire("compile", "22")
	if err != nil {
		t.Fatal(err)
	}
	a.Claim.Abandon()
	b, err := s.Acquire("compile", "22")
	if err != nil {
		t.Fatal(err)
	}
	if b.Claim == nil {
		t.Fatalf("Acquire after Abandon: %+v", b)
	}
	b.Claim.Abandon()
}

// TestWaiterGetsPublishedEntry pins the contended path: a second
// acquirer blocks on a live claim and comes back with the published
// payload and Waited set.
func TestWaiterGetsPublishedEntry(t *testing.T) {
	s := openTest(t)
	a, err := s.Acquire("compile", "33")
	if err != nil {
		t.Fatal(err)
	}
	if a.Claim == nil {
		t.Fatalf("first Acquire: %+v", a)
	}
	done := make(chan Acquired, 1)
	go func() {
		b, err := s.Acquire("compile", "33")
		if err != nil {
			t.Error(err)
		}
		done <- b
	}()
	time.Sleep(3 * s.opts.PollInterval) // let the waiter start polling
	if err := a.Claim.Publish([]byte("slow build result")); err != nil {
		t.Fatal(err)
	}
	b := <-done
	if b.Claim != nil || !bytes.Equal(b.Data, []byte("slow build result")) {
		t.Fatalf("waiter result: %+v", b)
	}
	if !b.Waited {
		t.Fatal("waiter did not report Waited")
	}
}

// TestStaleClaimTakenOver simulates a claim left by a dead process (a
// raw claim file with an old timestamp, no heartbeat): Acquire must
// reap it and win the build instead of waiting forever.
func TestStaleClaimTakenOver(t *testing.T) {
	s := openTest(t)
	claimPath := filepath.Join(s.root, "claims", "compile.44")
	if err := os.WriteFile(claimPath, []byte("pid 999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * s.opts.StaleAfter)
	if err := os.Chtimes(claimPath, old, old); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	a, err := s.Acquire("compile", "44")
	if err != nil {
		t.Fatal(err)
	}
	if a.Claim == nil {
		t.Fatalf("takeover Acquire: %+v", a)
	}
	if elapsed := time.Since(start); elapsed > 20*s.opts.StaleAfter {
		t.Fatalf("takeover took %v", elapsed)
	}
	a.Claim.Abandon()
}

// TestLiveClaimNotPreempted: the heartbeat must keep a slow-but-alive
// owner's claim fresh past StaleAfter, so a waiter does not start a
// duplicate build.
func TestLiveClaimNotPreempted(t *testing.T) {
	s := openTest(t)
	a, err := s.Acquire("compile", "55")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Acquired, 1)
	go func() {
		b, err := s.Acquire("compile", "55")
		if err != nil {
			t.Error(err)
		}
		done <- b
	}()
	// Hold the claim well past StaleAfter; the heartbeat refreshes it.
	time.Sleep(3 * s.opts.StaleAfter)
	select {
	case b := <-done:
		t.Fatalf("waiter preempted a live claim: %+v", b)
	default:
	}
	if err := a.Claim.Publish([]byte("eventually")); err != nil {
		t.Fatal(err)
	}
	b := <-done
	if b.Claim != nil || !bytes.Equal(b.Data, []byte("eventually")) {
		t.Fatalf("waiter after slow publish: %+v", b)
	}
}

// TestConcurrentAcquireBuildsOnce: many goroutines over two Store
// handles on one directory race Acquire for the same key; in this
// uncontended-by-death scenario exactly one must build.
func TestConcurrentAcquireBuildsOnce(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shared")
	s1, err := Open(dir, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	var wg sync.WaitGroup
	payload := []byte("the one true artifact")
	for i := 0; i < 16; i++ {
		s := s1
		if i%2 == 1 {
			s = s2
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, err := s.Acquire("compile", "66")
			if err != nil {
				t.Error(err)
				return
			}
			if a.Claim != nil {
				builds.Add(1)
				time.Sleep(2 * fastOpts.PollInterval) // widen the race window
				if err := a.Claim.Publish(payload); err != nil {
					t.Error(err)
				}
				return
			}
			if !bytes.Equal(a.Data, payload) {
				t.Errorf("got %q", a.Data)
			}
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("%d builds, want exactly 1", n)
	}
}

func TestGCPrunesOldestAccessFirst(t *testing.T) {
	s := openTest(t)
	// Three entries with staggered access times; each entry is
	// headerSize+16 bytes on disk.
	size := int64(headerSize + 16)
	base := time.Now().Add(-time.Hour)
	for i, key := range []string{"aa", "bb", "cc"} {
		if err := s.Put("compile", key, bytes.Repeat([]byte{byte(i)}, 16)); err != nil {
			t.Fatal(err)
		}
		ts := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.entryPath("compile", key), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	// Reading "aa" refreshes it, making "bb" the oldest.
	if _, ok := s.Get("compile", "aa"); !ok {
		t.Fatal("miss on aa")
	}
	st, err := s.GC(2 * size)
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 1 || st.Entries != 2 || st.Bytes != 2*size {
		t.Fatalf("GC stats: %+v", st)
	}
	if _, ok := s.Get("compile", "bb"); ok {
		t.Fatal("oldest-access entry bb survived GC")
	}
	for _, key := range []string{"aa", "cc"} {
		if _, ok := s.Get("compile", key); !ok {
			t.Fatalf("entry %s wrongly pruned", key)
		}
	}
	// Budget boundary: exactly-at-budget removes nothing further.
	st, err = s.GC(2 * size)
	if err != nil || st.Removed != 0 || st.Entries != 2 {
		t.Fatalf("at-budget GC: %+v err=%v", st, err)
	}
	// maxBytes <= 0 keeps everything.
	st, err = s.GC(0)
	if err != nil || st.Removed != 0 || st.Entries != 2 {
		t.Fatalf("unbounded GC: %+v err=%v", st, err)
	}
}

func TestListSortedAndComplete(t *testing.T) {
	s := openTest(t)
	want := []string{"compile/aa", "compile/zz", "layout/mm"}
	for _, e := range []struct{ kind, key string }{
		{"layout", "mm"}, {"compile", "zz"}, {"compile", "aa"},
	} {
		if err := s.Put(e.kind, e.key, []byte(e.kind+e.key)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range entries {
		got = append(got, e.Kind+"/"+e.Key)
		if e.Size <= int64(headerSize) {
			t.Errorf("%s/%s: size %d", e.Kind, e.Key, e.Size)
		}
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("List order: got %v want %v", got, want)
	}
}
