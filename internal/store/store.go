// Package store is a persistent, content-addressed artifact store: the
// disk tier under pipeline.Cache. Entries are opaque payloads addressed
// by (kind, key) where keys are stable content digests (ir.Fingerprint
// and the pipeline's compile-key digests), so any two processes that
// arrive at the same key may share one artifact — across process
// restarts, concurrent shards, and machines sharing a filesystem.
//
// The design follows shared-state optimistic concurrency rather than a
// coordinating server (the arktos discipline): writers never take a
// global lock. Publishing is atomic — payloads are written to a private
// temp file and renamed into place, so readers only ever observe absent
// or complete entries. Every entry carries a length and a sha256 of its
// payload; Get re-checks both, and the pipeline additionally
// re-fingerprints decoded programs against their keys, so a truncated
// or bit-flipped entry is a miss (and is deleted), never a wrong
// answer.
//
// Cross-process build deduplication uses optimistic claim files (see
// claim.go): the first builder of a key creates a claim, concurrent
// builders wait for the entry instead of duplicating the work, and a
// claim whose owner stops refreshing it goes stale and is taken over —
// nobody ever blocks on a dead process. Losing a race is always safe:
// artifacts are deterministic functions of their keys, so a duplicate
// build publishes identical bytes.
//
// On-disk layout under the root directory:
//
//	<kind>/<key>    entries (kind ∈ {compile, layout, ...}, key hex)
//	claims/         in-progress build claims
//	tmp/            private scratch for atomic publishes
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// entryMagic versions the entry framing. Bump on any change: entries
// written by other versions then fail the header check and are
// rebuilt, which is always safe.
const entryMagic = "pathsched-store-v1\n"

// headerSize is the fixed entry prefix: magic, 8-byte little-endian
// payload length, 32-byte payload sha256.
const headerSize = len(entryMagic) + 8 + sha256.Size

// Options tunes the claim protocol; the zero value selects defaults.
type Options struct {
	// StaleAfter is how long a claim may go unrefreshed before waiters
	// treat its owner as dead and take the build over (default 10s).
	// Owners refresh their claims every StaleAfter/4, so a live owner
	// is never preempted unless its process stalls for most of the
	// window — and even then the race is benign (both builds publish
	// identical bytes).
	StaleAfter time.Duration
	// PollInterval is how often a waiter re-checks for the entry or a
	// stale claim (default 20ms).
	PollInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.StaleAfter <= 0 {
		o.StaleAfter = 10 * time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 20 * time.Millisecond
	}
	return o
}

// Store is a handle on one artifact-store directory. It is safe for
// concurrent use by any number of goroutines and processes.
type Store struct {
	root string
	opts Options
	seq  atomic.Uint64 // uniquifies temp-file names within the process
}

// Open creates (if needed) and opens the store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "claims"), filepath.Join(dir, "tmp")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{root: dir, opts: opts.withDefaults()}, nil
}

// Root returns the store's directory.
func (s *Store) Root() string { return s.root }

// checkName rejects kind/key components that could escape the store
// directory or collide with the bookkeeping subdirectories.
func checkName(what, name string) error {
	if name == "" || name == "claims" || name == "tmp" {
		return fmt.Errorf("store: invalid %s %q", what, name)
	}
	for _, c := range name {
		ok := c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-'
		if !ok {
			return fmt.Errorf("store: invalid %s %q (want lowercase hex / dashes)", what, name)
		}
	}
	return nil
}

func (s *Store) entryPath(kind, key string) string {
	return filepath.Join(s.root, kind, key)
}

// tempPath returns a fresh private scratch path. Process id plus an
// in-process counter keeps concurrent publishers (goroutines and
// processes) from colliding.
func (s *Store) tempPath() string {
	return filepath.Join(s.root, "tmp", fmt.Sprintf("t%d-%d", os.Getpid(), s.seq.Add(1)))
}

// Get returns the payload stored under (kind, key). A missing,
// truncated, or corrupt entry is a miss; corrupt entries are deleted
// so the next Put does not need to race a poisoned file. Successful
// reads refresh the entry's timestamp, which is the access order GC
// prunes by.
func (s *Store) Get(kind, key string) ([]byte, bool) {
	if checkName("kind", kind) != nil || checkName("key", key) != nil {
		return nil, false
	}
	path := s.entryPath(kind, key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	payload, ok := decodeEntry(data)
	if !ok {
		// Corrupt or foreign-version entry: remove it so it stops
		// costing a read per lookup. A concurrent re-publish of the
		// same key is fine — we either delete the corrupt file before
		// the rename lands or harmlessly miss.
		os.Remove(path)
		return nil, false
	}
	now := time.Now()
	os.Chtimes(path, now, now) // best-effort access stamp for GC
	return payload, true
}

// Put atomically publishes payload under (kind, key): write to a
// private temp file, then rename into place. Readers never observe a
// partial entry; a crash mid-publish leaves only an ignorable file in
// tmp/ (cleaned by GC).
func (s *Store) Put(kind, key string, payload []byte) error {
	if err := checkName("kind", kind); err != nil {
		return err
	}
	if err := checkName("key", key); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Join(s.root, kind), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := s.tempPath()
	if err := writeFileSync(tmp, encodeEntry(payload)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publish %s/%s: %w", kind, key, err)
	}
	if err := os.Rename(tmp, s.entryPath(kind, key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publish %s/%s: %w", kind, key, err)
	}
	return nil
}

// Delete removes the entry under (kind, key); missing entries are not
// an error. The pipeline uses it to evict entries whose payloads
// decode but fail semantic integrity (fingerprint mismatch).
func (s *Store) Delete(kind, key string) error {
	if err := checkName("kind", kind); err != nil {
		return err
	}
	if err := checkName("key", key); err != nil {
		return err
	}
	err := os.Remove(s.entryPath(kind, key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// writeFileSync writes data and syncs it to stable storage before
// returning, so the subsequent rename never publishes a file whose
// contents are still in flight.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// encodeEntry frames a payload: magic, length, sha256, payload.
func encodeEntry(payload []byte) []byte {
	out := make([]byte, 0, headerSize+len(payload))
	out = append(out, entryMagic...)
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(payload)))
	out = append(out, lenBuf[:]...)
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return append(out, payload...)
}

// decodeEntry validates the framing and digest, returning the payload.
func decodeEntry(data []byte) ([]byte, bool) {
	if len(data) < headerSize || string(data[:len(entryMagic)]) != entryMagic {
		return nil, false
	}
	rest := data[len(entryMagic):]
	n := binary.LittleEndian.Uint64(rest[:8])
	var want [sha256.Size]byte
	copy(want[:], rest[8:8+sha256.Size])
	payload := rest[8+sha256.Size:]
	if uint64(len(payload)) != n {
		return nil, false
	}
	if sha256.Sum256(payload) != want {
		return nil, false
	}
	return payload, true
}
