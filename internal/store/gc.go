package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Entry describes one stored artifact, as listed by List.
type Entry struct {
	Kind    string
	Key     string
	Size    int64     // file size on disk (header + payload)
	ModTime time.Time // last access (reads refresh it)
}

// List returns every entry in the store, sorted by kind then key so
// output is deterministic regardless of directory iteration order.
func (s *Store) List() ([]Entry, error) {
	kinds, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []Entry
	for _, kd := range kinds {
		if !kd.IsDir() || kd.Name() == "claims" || kd.Name() == "tmp" {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.root, kd.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		for _, f := range files {
			fi, err := f.Info()
			if err != nil {
				continue // deleted concurrently
			}
			out = append(out, Entry{
				Kind:    kd.Name(),
				Key:     f.Name(),
				Size:    fi.Size(),
				ModTime: fi.ModTime(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	return out, nil
}

// GCStats reports what GC found and removed.
type GCStats struct {
	Entries       int   // entries remaining after the sweep
	Bytes         int64 // bytes remaining after the sweep
	Removed       int   // entries pruned to meet the budget
	RemovedBytes  int64
	TmpRemoved    int // abandoned temp files cleaned
	ClaimsRemoved int // stale claims cleaned
}

// GC prunes the store to at most maxBytes of entries, removing
// oldest-access first (reads refresh timestamps, so this is LRU-ish).
// maxBytes <= 0 keeps every entry. It also sweeps abandoned temp files
// and stale claims older than StaleAfter — the debris a killed process
// leaves behind — which is always safe: temp files are private until
// renamed, and a stale claim's owner is dead by definition.
func (s *Store) GC(maxBytes int64) (GCStats, error) {
	var st GCStats
	cutoff := time.Now().Add(-s.opts.StaleAfter)
	for _, sub := range []string{"tmp", "claims"} {
		files, err := os.ReadDir(filepath.Join(s.root, sub))
		if err != nil {
			return st, fmt.Errorf("store: %w", err)
		}
		for _, f := range files {
			fi, err := f.Info()
			if err != nil || fi.ModTime().After(cutoff) {
				continue
			}
			if os.Remove(filepath.Join(s.root, sub, f.Name())) == nil {
				if sub == "tmp" {
					st.TmpRemoved++
				} else {
					st.ClaimsRemoved++
				}
			}
		}
	}
	entries, err := s.List()
	if err != nil {
		return st, err
	}
	var total int64
	for _, e := range entries {
		total += e.Size
	}
	if maxBytes > 0 && total > maxBytes {
		byAge := append([]Entry(nil), entries...)
		sort.Slice(byAge, func(i, j int) bool {
			if !byAge[i].ModTime.Equal(byAge[j].ModTime) {
				return byAge[i].ModTime.Before(byAge[j].ModTime)
			}
			if byAge[i].Kind != byAge[j].Kind {
				return byAge[i].Kind < byAge[j].Kind
			}
			return byAge[i].Key < byAge[j].Key
		})
		for _, e := range byAge {
			if total <= maxBytes {
				break
			}
			if err := s.Delete(e.Kind, e.Key); err != nil {
				return st, err
			}
			total -= e.Size
			st.Removed++
			st.RemovedBytes += e.Size
		}
	}
	st.Entries = len(entries) - st.Removed
	st.Bytes = total
	return st, nil
}
