package check

import (
	"fmt"

	"pathsched/internal/ir"
	"pathsched/internal/machine"
	"pathsched/internal/sched"
)

// Schedules verifies every scheduled block of prog against mc, in the
// translation-validation style: the dependences are recomputed from
// the *emitted* instruction order via the scheduler's own
// sched.Dependences seam, and the recorded cycle assignment must
// satisfy them. Because the compactor linearizes by (cycle, original
// program order) and every original dependence pointed forward with
// its latency respected, every dependence recomputed from the emitted
// order is again satisfied by a correct schedule — except output
// dependences, which a register allocator reusing a dead register may
// legally collapse into one cycle, so WAW edges are only required to
// respect emitted order (which they do by construction). On top of the
// dependences it checks machine resources (issue width, control ops
// per cycle), the Span/ExitUnits/Units annotations, and that every
// load hoisted above an earlier unit's exit carries Spec.
func Schedules(prog *ir.Program, mc machine.Config) []Violation {
	return SchedulesWithDeps(prog, mc, nil)
}

// SchedulesWithDeps is Schedules with an optional recording of the
// scheduler's own dependence edges (sched.Options.RecordDeps): for a
// block present in deps, the recorded edges — already expressed over
// the emitted instruction order — replace the sched.Dependences
// recomputation, which is the dominant cost of a checked compile. The
// dependence rules still cannot drift: the recording comes from the
// same Dependences seam this package would call. Blocks absent from
// deps (or all blocks, when deps is nil) are recomputed as before, so
// a partial recording degrades to the slow path, never to a skipped
// check.
func SchedulesWithDeps(prog *ir.Program, mc machine.Config, deps sched.BlockDeps) []Violation {
	var out []Violation
	for _, p := range prog.Procs {
		live := sched.LiveIn(p)
		for _, b := range p.Blocks {
			if b.Cycles == nil {
				continue
			}
			recorded, ok := deps[b]
			if !ok {
				recorded = nil
			}
			out = append(out, checkBlockSchedule(p, b, live, mc, recorded, ok)...)
		}
	}
	return out
}

func checkBlockSchedule(p *ir.Proc, b *ir.Block, live []sched.RegSet, mc machine.Config, recorded []sched.DepEdge, haveRecorded bool) []Violation {
	var out []Violation
	bad := func(instr int, format string, args ...any) {
		out = append(out, Violation{
			Proc: p.Name, Block: b.ID, Instr: instr,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	n := len(b.Instrs)
	if n == 0 || len(b.Cycles) != n {
		// ir.Verify owns shape errors; nothing sensible to check here.
		return out
	}

	// Annotation sanity beyond ir.Verify's shape checks.
	if b.Span != b.Cycles[n-1]+1 {
		bad(NoInstr, "span %d, want last cycle %d + 1", b.Span, b.Cycles[n-1])
	}
	if b.ExitUnits == nil {
		bad(NoInstr, "scheduled block has no ExitUnits")
		return out
	}
	if b.ExitUnits[n-1] == 0 {
		bad(n-1, "final instruction is not marked as an exit")
	}
	prevUnit := int32(0)
	for i, u := range b.ExitUnits {
		if u == 0 {
			continue
		}
		if u < prevUnit {
			bad(i, "exit unit %d after exit unit %d: exits out of unit order", u, prevUnit)
		}
		prevUnit = u
		if b.Units != nil && b.Units[i] != u {
			bad(i, "exit unit %d disagrees with instruction unit %d", u, b.Units[i])
		}
	}

	// Dependence/latency validation: either against the scheduler's own
	// recorded edges (already in emitted order) or, without a
	// recording, by rebuilding the scheduling region from the emitted
	// order.
	edges := recorded
	if !haveRecorded {
		items := make([]sched.DepItem, n)
		for i := range b.Instrs {
			it := sched.DepItem{Ins: b.Instrs[i], IsExit: b.ExitUnits[i] != 0}
			if it.IsExit {
				for _, t := range b.Instrs[i].Targets {
					if t != ir.NoBlock {
						it.LiveOut.Union(live[t])
					}
				}
			}
			items[i] = it
		}
		edges = sched.Dependences(items, mc)
	}
	for _, e := range edges {
		if e.From < 0 || e.To < 0 || e.From >= n || e.To >= n {
			bad(NoInstr, "recorded dependence %d->%d outside the block's %d instructions", e.From, e.To, n)
			continue
		}
		if e.Kind == sched.DepWAW {
			continue // emitted order (From < To) is the whole requirement
		}
		if b.Cycles[e.To] < b.Cycles[e.From]+e.Lat {
			bad(e.To, "%s dependence violated: instr %d (cycle %d) needs instr %d (cycle %d) + latency %d",
				e.Kind, e.To, b.Cycles[e.To], e.From, b.Cycles[e.From], e.Lat)
		}
	}

	// Machine resources per cycle.
	for i := 0; i < n; {
		j := i
		branches := 0
		for j < n && b.Cycles[j] == b.Cycles[i] {
			if b.Instrs[j].Op.IsBranch() {
				branches++
			}
			j++
		}
		if w := j - i; w > mc.FuncUnits {
			bad(i, "cycle %d issues %d instructions, machine has %d functional units", b.Cycles[i], w, mc.FuncUnits)
		}
		if branches > mc.BranchPerCycle {
			bad(i, "cycle %d issues %d control operations, machine allows %d", b.Cycles[i], branches, mc.BranchPerCycle)
		}
		i = j
	}

	// Speculation: a load that now sits above an exit of an earlier
	// unit has been hoisted across that branch and must be marked
	// non-excepting. (The converse — a Spec flag with no crossed exit —
	// is legal: flags survive from earlier compilations of the input.)
	if b.Units != nil {
		for i := range b.Instrs {
			if b.Instrs[i].Op != ir.OpLoad || b.Instrs[i].Spec {
				continue
			}
			for j := i + 1; j < n; j++ {
				if b.ExitUnits[j] != 0 && b.ExitUnits[j] < b.Units[i] {
					bad(i, "load from unit %d hoisted above exit at instr %d (unit %d) without Spec",
						b.Units[i], j, b.ExitUnits[j])
					break
				}
			}
		}
	}

	// Speculation liveness (§2.3's live off-trace renaming, checked
	// directly): an instruction hoisted above an earlier unit's exit
	// must not define an architectural register that is live into any
	// of that exit's targets — the off-trace path would read the
	// speculative result in place of the value it expects. Repair
	// copies are exempt by construction: they carry their exit's own
	// unit, so the strict unit comparison never classifies them as
	// hoisted across it, and anti dependences pin them below every
	// earlier exit that reads the same register.
	if b.Units != nil {
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			if !ins.HasDst() || ins.Dst.IsVirtual() {
				continue
			}
			for j := i + 1; j < n; j++ {
				if b.ExitUnits[j] == 0 || b.ExitUnits[j] >= b.Units[i] {
					continue
				}
				for _, t := range b.Instrs[j].Targets {
					if t != ir.NoBlock && live[t].Has(ins.Dst) {
						bad(i, "def of r%d from unit %d hoisted above exit at instr %d (unit %d) clobbers a register live into off-trace target b%d",
							ins.Dst, b.Units[i], j, b.ExitUnits[j], t)
					}
				}
			}
		}
	}
	return out
}
