package check_test

import (
	"os"
	"path/filepath"
	"testing"

	"pathsched/internal/check"
	"pathsched/internal/ir"
	"pathsched/internal/machine"
)

// Every golden program under internal/ir/testdata must pass the
// offline semantic checks — the local mirror of CI's
// `irtool check` sweep over the same files.
func TestGoldensPassOfflineChecks(t *testing.T) {
	goldens, err := filepath.Glob(filepath.Join("..", "ir", "testdata", "*.ir"))
	if err != nil {
		t.Fatal(err)
	}
	if len(goldens) == 0 {
		t.Fatal("no golden .ir files found under internal/ir/testdata")
	}
	for _, path := range goldens {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			text, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := ir.ParseText(string(text))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := ir.Verify(prog); err != nil {
				t.Fatalf("verify: %v", err)
			}
			var vs []check.Violation
			vs = append(vs, check.DefBeforeUse(prog, check.BaselineOf(prog))...)
			vs = append(vs, check.Schedules(prog, machine.Default())...)
			if err := check.Err("offline", vs); err != nil {
				t.Fatal(err)
			}
		})
	}
}
