package check

import (
	"fmt"
	"sort"

	"pathsched/internal/ir"
	"pathsched/internal/profile"
)

// BLFlow verifies a Ball–Larus numbered path profile against the CFG
// and (when ep is the edge profile of the same run) against exact flow
// conservation. Each counted path id decodes to a block sequence;
// every adjacent pair inside it must be a real CFG edge, the block and
// edge frequencies implied by all decoded paths must equal the edge
// profile's exactly — a numbered path covers each of its blocks once
// and each of its internal edges once, plus the cut edge that ended it
// — and the total number of completed paths must equal procedure
// entries plus traversals of the path-ending (back/overflow) edges.
// Any miscounted increment, bad numbering, or decode error breaks one
// of these identities at the block where it happened.
func BLFlow(prog *ir.Program, bl *profile.BLProfiler, ep *profile.EdgeProfile) []Violation {
	var out []Violation
	for pid, p := range prog.Procs {
		pid := ir.ProcID(pid)
		bad := func(b ir.BlockID, format string, args ...any) {
			out = append(out, Violation{
				Proc: p.Name, Block: b, Instr: NoInstr,
				Msg: fmt.Sprintf(format, args...),
			})
		}

		isEdge := func(from, to ir.BlockID) bool {
			for _, s := range p.Block(from).Succs() {
				if s == to {
					return true
				}
			}
			return false
		}

		blockCnt := make([]int64, len(p.Blocks))
		edgeCnt := map[[2]ir.BlockID]int64{}
		bl.ForEachPath(pid, func(id, n int64) {
			blocks, cutTo := bl.DecodePath(pid, id)
			if len(blocks) == 0 {
				bad(ir.NoBlock, "path %d: decodes to no blocks", id)
				return
			}
			for i, b := range blocks {
				if int(b) >= len(blockCnt) {
					bad(b, "path %d: block out of range", id)
					return
				}
				blockCnt[b] += n
				if i > 0 {
					if !isEdge(blocks[i-1], b) {
						bad(blocks[i-1], "path %d: decoded pair b%d->b%d is not a CFG edge", id, blocks[i-1], b)
						return
					}
					edgeCnt[[2]ir.BlockID{blocks[i-1], b}] += n
				}
			}
			if cutTo != ir.NoBlock {
				last := blocks[len(blocks)-1]
				if !isEdge(last, cutTo) {
					bad(last, "path %d: cut edge b%d->b%d is not a CFG edge", id, last, cutTo)
					return
				}
				edgeCnt[[2]ir.BlockID{last, cutTo}] += n
			}
		})

		if ep == nil || int(pid) >= ep.NumProcs() {
			continue
		}

		// Exact agreement with the run's edge profile, both directions:
		// every CFG block and every CFG edge is compared, so a count the
		// numbered paths have and the edge profile lacks surfaces just
		// like the converse.
		for _, b := range p.Blocks {
			if en := ep.BlockFreq(pid, b.ID); blockCnt[b.ID] != en {
				bad(b.ID, "block frequency: numbered paths say %d, edge profile says %d", blockCnt[b.ID], en)
			}
			seen := map[ir.BlockID]bool{}
			for _, t := range b.Succs() {
				if seen[t] {
					continue
				}
				seen[t] = true
				if pn, en := edgeCnt[[2]ir.BlockID{b.ID, t}], ep.EdgeFreq(pid, b.ID, t); pn != en {
					bad(b.ID, "edge b%d->b%d: numbered paths say %d, edge profile says %d", b.ID, t, pn, en)
				}
			}
		}

		// Completion conservation: one path completes per activation and
		// one per path-ending edge traversal, nothing else.
		want := ep.Entries(pid)
		bl.ForEachCutEdge(pid, func(from, to ir.BlockID) {
			want += ep.EdgeFreq(pid, from, to)
		})
		if got := bl.Completions(pid); got != want {
			bad(ir.NoBlock, "completions: %d paths completed, want %d (entries + cut-edge traversals)", got, want)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		if out[i].Block != out[j].Block {
			return out[i].Block < out[j].Block
		}
		return out[i].Msg < out[j].Msg
	})
	return out
}
