package check_test

import (
	"testing"

	"pathsched/internal/check"
	"pathsched/internal/core"
	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/ir/irtest"
	"pathsched/internal/machine"
	"pathsched/internal/profile"
	"pathsched/internal/sched"
)

// FuzzCheck is the checker's soundness fuzzer: random executable
// programs go through the full pipeline (profile, form, compact), and
// every program that survives must also pass all four analyses — the
// checker may never reject legitimate pipeline output, and it may
// never panic on any input the pipeline accepts.
func FuzzCheck(f *testing.F) {
	f.Add(int64(1), uint8(8))
	f.Add(int64(2), uint8(12))
	f.Add(int64(42), uint8(6))
	f.Add(int64(-7), uint8(20))
	f.Add(int64(1234567), uint8(31))
	f.Fuzz(func(t *testing.T, seed int64, sz uint8) {
		prog := irtest.RandExecProg(seed, int(sz%28)+4)
		pristine := ir.CloneProgram(prog)

		ep := profile.NewEdgeProfiler(prog)
		pp := profile.NewPathProfiler(prog, profile.PathConfig{})
		if _, err := interp.Run(prog, interp.Config{
			Observer: profile.Multi{ep, pp},
			MaxSteps: 1 << 22,
		}); err != nil {
			t.Skipf("training run rejected: %v", err)
		}
		eprof, pprof := ep.Profile(), pp.Profile()
		if err := check.Err("profile", check.EdgeFlow(prog, eprof)); err != nil {
			t.Fatalf("edge profile of a real run rejected: %v", err)
		}
		if err := check.Err("profile", check.PathFlow(prog, pprof, eprof)); err != nil {
			t.Fatalf("path profile of a real run rejected: %v", err)
		}

		for _, method := range []core.Method{core.EdgeBased, core.PathBased} {
			cfg := core.DefaultConfig()
			cfg.Method = method
			cfg.Edge, cfg.Path = eprof, pprof
			res, err := core.Form(ir.CloneProgram(pristine), cfg)
			if err != nil {
				continue // formation may refuse odd shapes; not the checker's bug
			}
			if err := check.Err("form", check.Superblocks(res)); err != nil {
				t.Fatalf("%v formation rejected: %v", method, err)
			}
			if err := sched.Compact(res, sched.Options{}); err != nil {
				continue
			}
			if err := ir.Verify(res.Prog); err != nil {
				t.Fatalf("%v compaction produced unverifiable IR: %v", method, err)
			}
			if err := check.Err("compact", check.Schedules(res.Prog, machine.Default())); err != nil {
				t.Fatalf("%v schedule rejected: %v", method, err)
			}
			if err := check.Err("compact", check.DefBeforeUse(res.Prog, check.BaselineOf(pristine))); err != nil {
				t.Fatalf("%v def-before-use rejected: %v", method, err)
			}
		}
	})
}
