package check

import (
	"pathsched/internal/ir"
	"pathsched/internal/validate"
)

// Equiv runs the symbolic translation validator over a (pristine,
// transformed) program pair and reports every semantic divergence as a
// Violation, alongside the full per-procedure report (verdicts,
// Bounded reasons, cut counts).
//
// It is the semantic counterpart of the structural checks in this
// package: Schedules and friends verify the transformed program is
// well-formed and honours dependences and resources; Equiv proves it
// computes the same thing as the program the pipeline started from. A
// Bounded verdict produces no Violation — those procedures fall back
// to the structural checks, and the caller decides whether the
// explicit Bounded count is acceptable.
func Equiv(pristine, transformed *ir.Program, opts validate.Options) (*validate.Report, []Violation) {
	rep := validate.Program(pristine, transformed, opts)
	var vs []Violation
	for _, is := range rep.Issues {
		vs = append(vs, Violation{Proc: is.Proc, Block: is.Block, Instr: is.Instr, Msg: is.Msg})
	}
	return rep, vs
}
