package check

import (
	"fmt"

	"pathsched/internal/ir"
)

// The def-before-use analysis proves every register read is preceded
// by a write on all paths from the procedure entry. The interpreter
// zero-initializes frames, so a read-before-write is not a crash — but
// legitimate programs rarely rely on it, and a transformation must
// never *introduce* one (a renaming or allocation bug that reads a
// stale or never-written register looks exactly like this). The
// contract is therefore subset-shaped: BaselineOf records which
// (proc, physical register) reads the pristine program leaves possibly
// undefined, and DefBeforeUse accepts a transformed program only if
// its possibly-undefined reads are a subset of that baseline. Virtual
// registers get no such grace — renaming always writes a virtual
// before reading it, so an undefined virtual read is a hard error
// regardless of baseline.

// Baseline records, per procedure name, the physical registers that
// some entry path of the pristine program may read before writing.
type Baseline map[string]map[ir.Reg]bool

// BaselineOf runs the dataflow over prog (normally the pristine,
// pre-transformation program) and collects its possibly-undefined
// reads as the tolerance for later DefBeforeUse calls.
func BaselineOf(prog *ir.Program) Baseline {
	base := Baseline{}
	for _, p := range prog.Procs {
		m := map[ir.Reg]bool{}
		for _, u := range undefinedReads(p) {
			m[u.reg] = true
		}
		base[p.Name] = m
	}
	return base
}

// DefBeforeUse reports every register read of prog not preceded by a
// write on all entry paths, excusing physical-register reads the
// baseline already contains. A nil baseline excuses nothing.
func DefBeforeUse(prog *ir.Program, base Baseline) []Violation {
	var out []Violation
	for _, p := range prog.Procs {
		allowed := base[p.Name]
		for _, u := range undefinedReads(p) {
			if u.reg.IsVirtual() {
				out = append(out, Violation{
					Proc: p.Name, Block: u.block, Instr: u.instr,
					Msg: fmt.Sprintf("read of virtual register %s never written on some entry path", u.reg),
				})
				continue
			}
			if !allowed[u.reg] {
				out = append(out, Violation{
					Proc: p.Name, Block: u.block, Instr: u.instr,
					Msg: fmt.Sprintf("read of register %s not defined on all entry paths (and not in the pristine program's baseline)", u.reg),
				})
			}
		}
	}
	return out
}

type undefRead struct {
	block ir.BlockID
	instr int
	reg   ir.Reg
}

// undefinedReads computes the must-defined set at every block entry by
// forward dataflow (intersection over incoming edges, with mid-block
// exits propagating the set as of the exit point) and returns every
// read of a register outside that set. Only r1..r7 — the argument
// registers the call protocol fills — count as defined at entry.
//
// The sets are bitsets over a dense per-procedure register index
// (registers are sparse ir.Reg values, virtuals especially), and every
// instruction's uses and def are resolved to dense indices once up
// front, so the worklist iterations — the part that runs to a
// fixpoint — are pure word operations with no map traffic. This
// analysis runs on every compile when checking is on, so its constant
// factor is what the checker's overhead is mostly made of.
func undefinedReads(p *ir.Proc) []undefRead {
	nb := len(p.Blocks)

	// Pass 1: dense-index every register mentioned in the procedure and
	// flatten each instruction's uses/def into index form. instr k of
	// block b reads uses[useOff[b][k]:useOff[b][k+1]] and defines
	// defs[b][k] (-1 = no destination).
	idx := map[ir.Reg]int32{}
	regs := []ir.Reg{}
	index := func(r ir.Reg) int32 {
		if i, ok := idx[r]; ok {
			return i
		}
		i := int32(len(regs))
		idx[r] = i
		regs = append(regs, r)
		return i
	}
	for r := ir.RegArg0; r < ir.RegArg0+ir.MaxArgs; r++ {
		index(r)
	}
	uses := make([][]int32, nb)
	useOff := make([][]int32, nb)
	defs := make([][]int32, nb)
	var buf []ir.Reg
	for _, b := range p.Blocks {
		off := make([]int32, len(b.Instrs)+1)
		df := make([]int32, len(b.Instrs))
		var us []int32
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			buf = ins.Uses(buf[:0])
			for _, u := range buf {
				us = append(us, index(u))
			}
			off[i+1] = int32(len(us))
			df[i] = -1
			if ins.HasDst() {
				df[i] = index(ins.Dst)
			}
		}
		uses[b.ID], useOff[b.ID], defs[b.ID] = us, off, df
	}

	nw := (len(regs) + 63) / 64
	word := func(i int32) (int32, uint64) { return i >> 6, 1 << uint(i&63) }

	in := make([][]uint64, nb) // nil = not yet reached
	entry := make([]uint64, nw)
	for r := ir.RegArg0; r < ir.RegArg0+ir.MaxArgs; r++ {
		w, m := word(idx[r])
		entry[w] |= m
	}
	in[p.Entry().ID] = entry

	inWork := make([]bool, nb)
	work := []ir.BlockID{p.Entry().ID}
	inWork[p.Entry().ID] = true

	// meet intersects s into in[t]; returns true when in[t] shrank (or
	// was first set), i.e. t must be revisited.
	meet := func(t ir.BlockID, s []uint64) bool {
		if in[t] == nil {
			in[t] = append([]uint64(nil), s...)
			return true
		}
		changed := false
		for w, v := range in[t] {
			if nv := v & s[w]; nv != v {
				in[t][w] = nv
				changed = true
			}
		}
		return changed
	}

	// walk runs the transfer function over b. When onUse is non-nil it
	// is invoked for every (instr index, reg) read outside the current
	// defined set; when propagate is true, target blocks are met with
	// the point set and pushed on change.
	s := make([]uint64, nw)
	walk := func(b *ir.Block, propagate bool, onUse func(i int, r ir.Reg)) {
		copy(s, in[b.ID])
		us, off, df := uses[b.ID], useOff[b.ID], defs[b.ID]
		for i := range b.Instrs {
			for _, u := range us[off[i]:off[i+1]] {
				if w, m := word(u); s[w]&m == 0 && onUse != nil {
					onUse(i, regs[u])
				}
			}
			// A call defines Dst only on return, which is exactly when
			// its continuation (in- or out-of-block) resumes; branches
			// transfer before any def. Both orders collapse to "defs
			// apply before successors see the set" for OpCall and
			// "after" is irrelevant for def-less terminators.
			if d := df[i]; d >= 0 {
				w, m := word(d)
				s[w] |= m
			}
			if propagate {
				for _, t := range b.Instrs[i].Targets {
					if t == ir.NoBlock {
						continue
					}
					if meet(t, s) && !inWork[t] {
						inWork[t] = true
						work = append(work, t)
					}
				}
			}
		}
	}

	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b] = false
		walk(p.Blocks[b], true, nil)
	}

	var out []undefRead
	for _, b := range p.Blocks {
		if in[b.ID] == nil {
			continue // unreachable
		}
		id := b.ID
		walk(b, false, func(i int, r ir.Reg) {
			out = append(out, undefRead{block: id, instr: i, reg: r})
		})
	}
	return out
}
