package check_test

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"pathsched/internal/check"
	"pathsched/internal/core"
	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/machine"
	"pathsched/internal/profile"
	"pathsched/internal/sched"
)

// Mutation tests: each test compiles a clean program, confirms the
// relevant analysis accepts it, applies one scripted illegal edit of
// the kind a buggy pass could produce, and asserts the analysis
// rejects it with a diagnostic naming the exact position.

// mutProg builds a loop whose hot path (head → b1 → b2 → latch) is
// prime superblock material: the side block rare joins back at latch
// (forcing tail duplication), and b2 loads from a data segment so the
// scheduler has loads to hoist above b1's exit (forcing Spec).
func mutProg() *ir.Program {
	bd := ir.NewBuilder("mut", 64)
	bd.Data(0, 7, 9)
	pb := bd.Proc("main")
	entry, head, b1, b2, rare, latch, exit :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, s, c, t1, t2, t3, base = 1, 2, 3, 4, 5, 6, 7
	entry.Add(ir.MovI(i, 0), ir.MovI(s, 0), ir.MovI(base, 0))
	entry.Jmp(head.ID())
	head.Add(ir.CmpLTI(c, i, 300))
	head.Br(c, b1.ID(), exit.ID())
	b1.Add(ir.AddI(t1, i, 3), ir.AndI(c, i, 63), ir.CmpEQI(c, c, 63))
	b1.Br(c, rare.ID(), b2.ID())
	b2.Add(
		ir.Load(t2, base, 0), ir.Load(t3, base, 1),
		ir.Add(s, s, t2), ir.Add(s, s, t3), ir.Add(s, s, t1),
	)
	b2.Jmp(latch.ID())
	rare.Add(ir.AddI(s, s, 1000))
	rare.Jmp(latch.ID())
	latch.Add(ir.AddI(i, i, 1))
	latch.Jmp(head.ID())
	exit.Add(ir.Emit(s))
	exit.Ret(s)
	return bd.Finish()
}

// form profiles mutProg and forms path-based superblocks, returning
// the formation result (not yet compacted) and the profilers.
func form(t *testing.T) (*core.Result, *profile.EdgeProfiler, *profile.PathProfiler) {
	t.Helper()
	prog := mutProg()
	ep := profile.NewEdgeProfiler(prog)
	pp := profile.NewPathProfiler(prog, profile.PathConfig{})
	if _, err := interp.Run(prog, interp.Config{Observer: profile.Multi{ep, pp}}); err != nil {
		t.Fatalf("training run: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.Method = core.PathBased
	cfg.Edge, cfg.Path = ep.Profile(), pp.Profile()
	cfg.MinExecFreq = 2
	res, err := core.Form(prog, cfg)
	if err != nil {
		t.Fatalf("Form: %v", err)
	}
	return res, ep, pp
}

// compiled forms and compacts, returning the scheduled binary.
func compiled(t *testing.T) *ir.Program {
	t.Helper()
	res, _, _ := form(t)
	if err := sched.Compact(res, sched.Options{}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	return res.Prog
}

// requireViolation asserts vs contains a violation whose message
// contains want, and returns the first such violation.
func requireViolation(t *testing.T, vs []check.Violation, want string) check.Violation {
	t.Helper()
	for _, v := range vs {
		if strings.Contains(v.Msg, want) {
			return v
		}
	}
	t.Fatalf("no violation mentions %q; got %v", want, check.Err("test", vs))
	return check.Violation{}
}

// --- DefBeforeUse mutations ---

// Mutation 1: an instruction reads a virtual register no pass ever
// wrote — the signature of a renaming bug.
func TestMutationUndefinedVirtualRead(t *testing.T) {
	prog := compiled(t)
	p := prog.Proc(0)
	b, i := findUse(t, p)
	b.Instrs[i].Src1 = ir.VirtBase + 99
	vs := check.DefBeforeUse(prog, check.BaselineOf(mutProg()))
	v := requireViolation(t, vs, "virtual register")
	if v.Proc != "main" || v.Block != b.ID || v.Instr != i {
		t.Fatalf("violation at %q b%d instr %d, mutated b%d instr %d", v.Proc, v.Block, v.Instr, b.ID, i)
	}
}

// Mutation 2: an instruction reads a physical register never defined
// on any entry path (and absent from the pristine baseline) — the
// signature of an allocation bug handing out a stale register.
func TestMutationUndefinedPhysicalRead(t *testing.T) {
	prog := compiled(t)
	p := prog.Proc(0)
	b, i := findUse(t, p)
	b.Instrs[i].Src1 = 50 // never written anywhere in mutProg
	vs := check.DefBeforeUse(prog, check.BaselineOf(mutProg()))
	v := requireViolation(t, vs, "not defined on all entry paths")
	if v.Block != b.ID || v.Instr != i {
		t.Fatalf("violation at b%d instr %d, mutated b%d instr %d", v.Block, v.Instr, b.ID, i)
	}
}

// findUse returns the first reachable instruction with a register
// operand in Src1 (skipping the entry constants).
func findUse(t *testing.T, p *ir.Proc) (*ir.Block, int) {
	t.Helper()
	g := ir.NewCFG(p)
	var buf []ir.Reg
	for _, b := range p.Blocks {
		if !g.Reachable(b.ID) {
			continue
		}
		for i := range b.Instrs {
			if buf = b.Instrs[i].Uses(buf[:0]); len(buf) > 0 && b.Instrs[i].Src1 == buf[0] {
				return b, i
			}
		}
	}
	t.Fatal("no instruction with a Src1 use found")
	return nil, 0
}

// --- Schedule mutations ---

// Mutation 3: shrink a consumer's cycle below its producer's
// completion — a flow-dependence violation a broken list scheduler
// could emit.
func TestMutationRAWCycleViolation(t *testing.T) {
	prog := compiled(t)
	mc := machine.Default()
	if vs := check.Schedules(prog, mc); len(vs) != 0 {
		t.Fatalf("clean schedule rejected: %v", check.Err("compact", vs))
	}
	p := prog.Proc(0)
	live := sched.LiveIn(p)
	for _, b := range p.Blocks {
		if b.Cycles == nil {
			continue
		}
		items := make([]sched.DepItem, len(b.Instrs))
		for i := range b.Instrs {
			items[i] = sched.DepItem{Ins: b.Instrs[i], IsExit: b.ExitUnits[i] != 0}
			if items[i].IsExit {
				for _, tg := range b.Instrs[i].Targets {
					if tg != ir.NoBlock {
						items[i].LiveOut.Union(live[tg])
					}
				}
			}
		}
		for _, e := range sched.Dependences(items, mc) {
			if e.Kind != sched.DepRAW || e.Lat < 1 || e.To == len(b.Instrs)-1 {
				continue
			}
			b.Cycles[e.To] = b.Cycles[e.From] // needs From+Lat
			vs := check.Schedules(prog, mc)
			v := requireViolation(t, vs, "RAW dependence violated")
			if v.Block != b.ID || v.Instr != e.To {
				t.Fatalf("violation at b%d instr %d, mutated b%d instr %d", v.Block, v.Instr, b.ID, e.To)
			}
			return
		}
	}
	t.Fatal("no RAW edge found to mutate")
}

// Mutation 4: cram a whole superblock into one cycle — more parallel
// issue than the machine has functional units.
func TestMutationIssueWidthViolation(t *testing.T) {
	prog := compiled(t)
	mc := machine.Default()
	p := prog.Proc(0)
	for _, b := range p.Blocks {
		if b.Cycles == nil || len(b.Instrs) <= mc.FuncUnits {
			continue
		}
		for i := range b.Cycles {
			b.Cycles[i] = 0
		}
		b.Span = 1
		vs := check.Schedules(prog, mc)
		v := requireViolation(t, vs, "functional units")
		if v.Block != b.ID {
			t.Fatalf("violation at b%d, mutated b%d", v.Block, b.ID)
		}
		requireViolation(t, vs, "control operations") // branches also pile up
		return
	}
	t.Fatalf("no block wider than %d instructions", mc.FuncUnits)
}

// Mutation 5: clear the Spec flag on a load the scheduler hoisted
// above an earlier unit's exit — the unprotected speculation the
// paper's safety rule exists to prevent.
func TestMutationSpecCleared(t *testing.T) {
	prog := compiled(t)
	p := prog.Proc(0)
	for _, b := range p.Blocks {
		if b.Units == nil {
			continue
		}
		for i := range b.Instrs {
			if b.Instrs[i].Op != ir.OpLoad || !b.Instrs[i].Spec {
				continue
			}
			// Only a load that actually crossed an exit must keep Spec.
			crossed := false
			for j := i + 1; j < len(b.Instrs); j++ {
				if b.ExitUnits[j] != 0 && b.ExitUnits[j] < b.Units[i] {
					crossed = true
				}
			}
			if !crossed {
				continue
			}
			b.Instrs[i].Spec = false
			vs := check.Schedules(prog, machine.Default())
			v := requireViolation(t, vs, "without Spec")
			if v.Block != b.ID || v.Instr != i {
				t.Fatalf("violation at b%d instr %d, mutated b%d instr %d", v.Block, v.Instr, b.ID, i)
			}
			return
		}
	}
	t.Fatal("no speculated load found — formation did not hoist b2's loads")
}

// --- Superblock mutations ---

// Mutation 6: corrupt one immediate of a tail-duplicated clone, so it
// no longer computes what its original does.
func TestMutationCloneDiverges(t *testing.T) {
	res, _, _ := form(t)
	if vs := check.Superblocks(res); len(vs) != 0 {
		t.Fatalf("clean formation rejected: %v", check.Err("form", vs))
	}
	p := res.Prog.Proc(0)
	for _, b := range p.Blocks {
		if b.Origin == b.ID || len(b.Instrs) == 0 {
			continue
		}
		b.Instrs = append([]ir.Instr(nil), b.Instrs...) // unalias from the original
		b.Instrs[0].Imm++
		vs := check.Superblocks(res)
		v := requireViolation(t, vs, "diverges")
		if v.Block != b.ID || v.Instr != 0 {
			t.Fatalf("violation at b%d instr %d, mutated b%d instr 0", v.Block, v.Instr, b.ID)
		}
		return
	}
	t.Fatal("no tail-duplicated clone found — rare/latch join did not duplicate")
}

// Mutation 7: retarget a branch into the middle of a superblock — a
// side entrance, the exact thing tail duplication exists to remove.
func TestMutationSideEntrance(t *testing.T) {
	res, _, _ := form(t)
	p := res.Prog.Proc(0)
	var mid, head ir.BlockID = ir.NoBlock, ir.NoBlock
	for _, sb := range res.Superblocks[p.ID] {
		if len(sb.Blocks) >= 2 {
			head, mid = sb.Blocks[0], sb.Blocks[1]
			break
		}
	}
	if mid == ir.NoBlock {
		t.Fatal("no multi-block superblock formed")
	}
	for _, b := range p.Blocks {
		if b.ID == head || len(b.Terminator().Targets) == 0 || b.Terminator().Targets[0] == mid {
			continue
		}
		term := b.Terminator()
		term.Targets = append([]ir.BlockID(nil), term.Targets...)
		term.Targets[0] = mid
		vs := check.Superblocks(res)
		v := requireViolation(t, vs, "side entrance")
		if v.Block != b.ID {
			t.Fatalf("violation at b%d, mutated b%d", v.Block, b.ID)
		}
		return
	}
	t.Fatal("no block found to retarget")
}

// --- Profile mutations ---

// Mutation 8: corrupt one edge count of a serialized edge profile —
// Kirchhoff's law breaks at both endpoints.
func TestMutationEdgeCountCorrupted(t *testing.T) {
	prog := mutProg()
	ep := profile.NewEdgeProfiler(prog)
	if _, err := interp.Run(prog, interp.Config{Observer: ep}); err != nil {
		t.Fatal(err)
	}
	if vs := check.EdgeFlow(prog, ep.Profile()); len(vs) != 0 {
		t.Fatalf("clean profile rejected: %v", check.Err("profile", vs))
	}
	text := ep.Profile().WriteText()
	re := regexp.MustCompile(`edge b(\d+)->b(\d+): (\d+)`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatal("no edge line in serialized profile")
	}
	n, _ := strconv.ParseInt(m[3], 10, 64)
	corrupted := strings.Replace(text, m[0],
		"edge b"+m[1]+"->b"+m[2]+": "+strconv.FormatInt(n+5, 10), 1)
	bad, err := profile.ParseEdgeProfile(len(prog.Procs), corrupted)
	if err != nil {
		t.Fatal(err)
	}
	vs := check.EdgeFlow(prog, bad)
	v := requireViolation(t, vs, "flow")
	if v.Proc != "main" {
		t.Fatalf("violation names proc %q, want main", v.Proc)
	}
}

// Mutation 9: inflate one recorded path count far beyond its
// prefix-edge counts — a path cannot run more often than the edges
// inside it.
func TestMutationPathCountInflated(t *testing.T) {
	prog := mutProg()
	ep := profile.NewEdgeProfiler(prog)
	pp := profile.NewPathProfiler(prog, profile.PathConfig{})
	if _, err := interp.Run(prog, interp.Config{Observer: profile.Multi{ep, pp}}); err != nil {
		t.Fatal(err)
	}
	if vs := check.PathFlow(prog, pp.Profile(), ep.Profile()); len(vs) != 0 {
		t.Fatalf("clean profile rejected: %v", check.Err("profile", vs))
	}
	text := pp.WriteText()
	re := regexp.MustCompile(`path (\d+): (b\d+ b\d+ b\d+[^\n]*)`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatal("no window of three or more blocks in serialized profile")
	}
	n, _ := strconv.ParseInt(m[1], 10, 64)
	corrupted := strings.Replace(text, m[0],
		"path "+strconv.FormatInt(n*1000000, 10)+": "+m[2], 1)
	bad, err := profile.ParsePathProfile(prog, corrupted)
	if err != nil {
		t.Fatal(err)
	}
	vs := check.PathFlow(prog, bad, ep.Profile())
	v := requireViolation(t, vs, "but its edge")
	if v.Proc != "main" {
		t.Fatalf("violation names proc %q, want main", v.Proc)
	}
}

// The stage stamp: Err renders stage, proc, block, and instruction so
// a pipeline failure names where to look.
func TestViolationRendering(t *testing.T) {
	err := check.Err("compact", []check.Violation{
		{Proc: "main", Block: 3, Instr: 7, Msg: "boom"},
	})
	want := `check[compact]: proc "main" block b3 instr 7: boom`
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("got %v, want substring %q", err, want)
	}
	if check.Err("compact", nil) != nil {
		t.Fatal("empty violation set must fold to nil")
	}
}

// Mutation 10: retarget a hoisted (speculated) load's destination onto
// a register that is live into the off-trace target of the exit it was
// hoisted above. That is exactly the clobber live-range renaming
// exists to prevent (§2.3 of the paper): the off-trace path would read
// the speculative value instead of the one it expects.
func TestMutationSpeculativeClobberLive(t *testing.T) {
	prog := compiled(t)
	mc := machine.Default()
	if vs := check.Schedules(prog, mc); len(vs) != 0 {
		t.Fatalf("clean schedule rejected: %v", check.Err("compact", vs))
	}
	p := prog.Proc(0)
	live := sched.LiveIn(p)
	for _, b := range p.Blocks {
		if b.Units == nil {
			continue
		}
		for i := range b.Instrs {
			if b.Instrs[i].Op != ir.OpLoad || !b.Instrs[i].Spec || b.Instrs[i].Dst.IsVirtual() {
				continue
			}
			for j := i + 1; j < len(b.Instrs); j++ {
				// Only exits the load was hoisted above count.
				if b.ExitUnits[j] == 0 || b.ExitUnits[j] >= b.Units[i] {
					continue
				}
				var reg ir.Reg
				found := false
				for _, tg := range b.Instrs[j].Targets {
					if tg == ir.NoBlock || found {
						continue
					}
					live[tg].ForEach(func(r ir.Reg) {
						if !found {
							reg, found = r, true
						}
					})
				}
				if !found {
					continue
				}
				b.Instrs[i].Dst = reg
				vs := check.Schedules(prog, mc)
				v := requireViolation(t, vs, "live into off-trace")
				if v.Block != b.ID || v.Instr != i {
					t.Fatalf("violation at b%d instr %d, mutated b%d instr %d", v.Block, v.Instr, b.ID, i)
				}
				return
			}
		}
	}
	t.Fatal("no speculated load above an exit with a live off-trace register found")
}
