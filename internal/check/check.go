// Package check is a semantic static-analysis layer over the IR: it
// verifies properties ir.Verify cannot, in the style of translation
// validation — instead of trusting the formation and scheduling passes,
// it independently re-derives what must hold of their output and
// reports any divergence.
//
// Four analyses:
//
//   - DefBeforeUse: forward must-defined dataflow proving every
//     register read is preceded by a write on all paths from entry.
//   - Schedules: recompute dependences from the emitted instruction
//     order (via the scheduler's own sched.Dependences seam) and verify
//     the cycle assignment, issue width, control placement, and
//     speculation flags.
//   - Superblocks: formed superblocks have no side entrances and
//     tail-duplicated blocks stay consistent with their originals.
//   - EdgeFlow / PathFlow: profile counts satisfy Kirchhoff's law and
//     path counts never exceed their prefix-edge counts.
//
// All analyses are read-only and return []Violation; Err stamps a
// pipeline stage onto the set and folds it into an error.
package check

import (
	"fmt"
	"strings"

	"pathsched/internal/ir"
)

// NoInstr marks a Violation that is not tied to one instruction.
const NoInstr = -1

// Violation is one semantic check failure, carrying enough position to
// find the offending construct: pipeline stage, procedure, block, and
// instruction index (NoInstr when block- or proc-level).
type Violation struct {
	Stage string
	Proc  string
	Block ir.BlockID
	Instr int
	Msg   string
}

func (v Violation) String() string {
	var sb strings.Builder
	sb.WriteString("check")
	if v.Stage != "" {
		fmt.Fprintf(&sb, "[%s]", v.Stage)
	}
	sb.WriteString(":")
	if v.Proc != "" {
		fmt.Fprintf(&sb, " proc %q", v.Proc)
	}
	if v.Block != ir.NoBlock {
		fmt.Fprintf(&sb, " block b%d", v.Block)
	}
	if v.Instr != NoInstr {
		fmt.Fprintf(&sb, " instr %d", v.Instr)
	}
	sb.WriteString(": ")
	sb.WriteString(v.Msg)
	return sb.String()
}

// Error aggregates the violations of one checked stage.
type Error struct {
	Violations []Violation
}

func (e *Error) Error() string {
	const show = 8
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d check violation(s)", len(e.Violations))
	for i, v := range e.Violations {
		if i == show {
			fmt.Fprintf(&sb, "\n  ... and %d more", len(e.Violations)-show)
			break
		}
		sb.WriteString("\n  ")
		sb.WriteString(v.String())
	}
	return sb.String()
}

// Err stamps stage onto every violation and wraps the set into an
// *Error, or returns nil when there are none.
func Err(stage string, vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	for i := range vs {
		vs[i].Stage = stage
	}
	return &Error{Violations: vs}
}
