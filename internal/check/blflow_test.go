package check_test

import (
	"testing"

	"pathsched/internal/check"
	"pathsched/internal/interp"
	"pathsched/internal/profile"
)

// A Ball–Larus training run over a real looping program must pass its
// own flow checker and the generic path-flow checker at every
// extension depth, so pipeline -check can gate on both.
func TestBLFlowCleanRun(t *testing.T) {
	for _, k := range []int{2, 0, 7} {
		prog := mutProg()
		tp, err := profile.TrainBL(prog, profile.BLConfig{Iterations: k})
		if err != nil {
			t.Fatalf("k=%d: TrainBL: %v", k, err)
		}
		if vs := check.BLFlow(prog, tp.BL, tp.Edge); len(vs) != 0 {
			t.Errorf("k=%d: %v", k, check.Err("blflow", vs))
		}
		if vs := check.PathFlow(prog, tp.Path, tp.Edge); len(vs) != 0 {
			t.Errorf("k=%d: %v", k, check.Err("pathflow", vs))
		}
		if vs := check.EdgeFlow(prog, tp.Edge); len(vs) != 0 {
			t.Errorf("k=%d: %v", k, check.Err("edgeflow", vs))
		}
	}
}

// The checker has teeth: a Ball–Larus profiler whose event stream
// diverges from the run the edge profile describes (here a truncated
// stream that bails after the first edge, leaving a phantom completed
// path) must trip block-frequency and completions violations.
func TestBLFlowDetectsCorruptStream(t *testing.T) {
	prog := mutProg()
	ep := profile.NewEdgeProfiler(prog)
	if _, err := interp.Run(prog, interp.Config{Observer: ep}); err != nil {
		t.Fatal(err)
	}
	bl := profile.NewBLProfiler(prog, profile.BLConfig{})
	bl.EnterProc(0, prog.Proc(0).Entry().ID)
	bl.Edge(0, 0, prog.Proc(0).Entry().Succs()[0])
	bl.ExitProc(0)
	vs := check.BLFlow(prog, bl, ep.Profile())
	if len(vs) == 0 {
		t.Fatal("BLFlow accepted a profiler that saw a different run than the edge profile")
	}
	requireViolation(t, vs, "completions")
	requireViolation(t, vs, "block")
}
