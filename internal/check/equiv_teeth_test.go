package check_test

import (
	"strings"
	"testing"

	"pathsched/internal/check"
	"pathsched/internal/core"
	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/machine"
	"pathsched/internal/profile"
	"pathsched/internal/sched"
	"pathsched/internal/validate"
)

// Teeth tests for the translation validator: each test compiles a
// clean program, applies one scripted semantic miscompile of the kind
// a buggy pass could produce, proves the mutation is INVISIBLE to
// every pre-existing structural check (Verify, Schedules,
// DefBeforeUse), and then asserts check.Equiv rejects it. Together
// they pin the claim that the validator catches a class of
// miscompiles the structural checker provably cannot.

// teethProg extends the mutation-test loop with a subtraction (operand
// order matters) and two stores to distinct addresses (effect order
// and multiplicity matter), so every mutation below has a target.
func teethProg() *ir.Program {
	bd := ir.NewBuilder("teeth", 64)
	bd.Data(0, 7, 9)
	pb := bd.Proc("main")
	entry, head, b1, b2, rare, latch, exit :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, s, c, t1, t2, t3, base = 1, 2, 3, 4, 5, 6, 7
	entry.Add(ir.MovI(i, 0), ir.MovI(s, 0), ir.MovI(base, 0))
	entry.Jmp(head.ID())
	head.Add(ir.CmpLTI(c, i, 300))
	head.Br(c, b1.ID(), exit.ID())
	b1.Add(ir.AddI(t1, i, 3), ir.AndI(c, i, 63), ir.CmpEQI(c, c, 63))
	b1.Br(c, rare.ID(), b2.ID())
	b2.Add(
		ir.Load(t2, base, 0), ir.Load(t3, base, 1),
		ir.Add(s, s, t2), ir.Sub(s, s, t3), ir.Add(s, s, t1),
		ir.Store(base, 3, s), ir.Store(base, 4, i),
	)
	b2.Jmp(latch.ID())
	rare.Add(ir.AddI(s, s, 1000))
	rare.Jmp(latch.ID())
	latch.Add(ir.AddI(i, i, 1))
	latch.Jmp(head.ID())
	exit.Add(ir.Emit(s))
	exit.Ret(s)
	return bd.Finish()
}

// teethCompiled path-compiles teethProg, returning the transformed
// program and the pristine original.
func teethCompiled(t *testing.T) (bin, pristine *ir.Program) {
	t.Helper()
	pristine = teethProg()
	ep := profile.NewEdgeProfiler(pristine)
	pp := profile.NewPathProfiler(pristine, profile.PathConfig{})
	if _, err := interp.Run(pristine, interp.Config{Observer: profile.Multi{ep, pp}}); err != nil {
		t.Fatalf("training run: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.Method = core.PathBased
	cfg.Edge, cfg.Path = ep.Profile(), pp.Profile()
	cfg.MinExecFreq = 2
	res, err := core.Form(ir.CloneProgram(pristine), cfg)
	if err != nil {
		t.Fatalf("Form: %v", err)
	}
	if err := sched.Compact(res, sched.Options{}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	return res.Prog, pristine
}

// requireStructurallyClean asserts the (possibly mutated) binary still
// passes every pre-existing check — the premise that makes a teeth
// test meaningful.
func requireStructurallyClean(t *testing.T, bin, pristine *ir.Program) {
	t.Helper()
	if err := ir.Verify(bin); err != nil {
		t.Fatalf("mutation visible to ir.Verify — tooth invalid: %v", err)
	}
	if err := check.Err("compact", check.Schedules(bin, machine.Default())); err != nil {
		t.Fatalf("mutation visible to check.Schedules — tooth invalid: %v", err)
	}
	if err := check.Err("compact", check.DefBeforeUse(bin, check.BaselineOf(pristine))); err != nil {
		t.Fatalf("mutation visible to check.DefBeforeUse — tooth invalid: %v", err)
	}
}

// requireEquivCatch asserts the validator rejects the mutation with a
// violation carrying full proc+block identity.
func requireEquivCatch(t *testing.T, bin, pristine *ir.Program, want string) {
	t.Helper()
	rep, vs := check.Equiv(pristine, bin, validate.Options{})
	if rep.Stats.Failed == 0 {
		t.Fatalf("validator missed the miscompile: %v", rep.Stats)
	}
	v := requireViolation(t, vs, want)
	if v.Proc != "main" || v.Block == ir.NoBlock {
		t.Fatalf("violation lacks identity: %+v", v)
	}
	if !strings.Contains(check.Err("validate", vs).Error(), `proc "main"`) {
		t.Fatalf("rendered violation lacks proc identity: %v", check.Err("validate", vs))
	}
}

// findInstr returns the first reachable instruction satisfying pred.
func findInstr(t *testing.T, p *ir.Proc, what string, pred func(*ir.Instr) bool) (*ir.Block, int) {
	t.Helper()
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			if pred(&b.Instrs[i]) {
				return b, i
			}
		}
	}
	t.Fatalf("no %s found in compiled program", what)
	return nil, 0
}

// Tooth 1: a dropped store — the effect silently vanishes, but the
// schedule, dependences, and register discipline remain impeccable.
func TestToothDroppedStore(t *testing.T) {
	bin, pristine := teethCompiled(t)
	_, _ = findInstr(t, bin.Procs[0], "store", func(ins *ir.Instr) bool {
		if ins.Op != ir.OpStore {
			return false
		}
		*ins = ir.Nop()
		return true
	})
	requireStructurallyClean(t, bin, pristine)
	requireEquivCatch(t, bin, pristine, "stores/calls")
}

// Tooth 2: a duplicated store — the second store's operands are
// overwritten with the first's, so one address is written twice and
// another never.
func TestToothDuplicatedStore(t *testing.T) {
	bin, pristine := teethCompiled(t)
	p := bin.Procs[0]
	b, i := findInstr(t, p, "store", func(ins *ir.Instr) bool { return ins.Op == ir.OpStore })
	_, _ = findInstr(t, p, "second store", func(ins *ir.Instr) bool {
		if ins.Op != ir.OpStore || ins == &b.Instrs[i] {
			return false
		}
		ins.Src1, ins.Src2, ins.Imm = b.Instrs[i].Src1, b.Instrs[i].Src2, b.Instrs[i].Imm
		return true
	})
	requireStructurallyClean(t, bin, pristine)
	requireEquivCatch(t, bin, pristine, "different address")
}

// Tooth 3: two stores to different addresses swapped in place — the
// memory stream is reordered. The recomputed dependence graph follows
// emitted order, so the structural checker sees a perfectly consistent
// schedule.
func TestToothReorderedStores(t *testing.T) {
	bin, pristine := teethCompiled(t)
	p := bin.Procs[0]
	b, i := findInstr(t, p, "store", func(ins *ir.Instr) bool { return ins.Op == ir.OpStore })
	j := -1
	for k := i + 1; k < len(b.Instrs); k++ {
		if b.Instrs[k].Op == ir.OpStore && b.Instrs[k].Imm != b.Instrs[i].Imm {
			j = k
			break
		}
	}
	if j < 0 {
		t.Fatal("no second store in the same block")
	}
	b.Instrs[i], b.Instrs[j] = b.Instrs[j], b.Instrs[i]
	requireStructurallyClean(t, bin, pristine)
	requireEquivCatch(t, bin, pristine, "different address")
}

// Tooth 4: operand swap on a non-commutative op — s-t3 becomes t3-s.
func TestToothOperandSwap(t *testing.T) {
	bin, pristine := teethCompiled(t)
	_, _ = findInstr(t, bin.Procs[0], "sub", func(ins *ir.Instr) bool {
		if ins.Op != ir.OpSub || ins.Src1 == ins.Src2 {
			return false
		}
		ins.Src1, ins.Src2 = ins.Src2, ins.Src1
		return true
	})
	requireStructurallyClean(t, bin, pristine)
	requireEquivCatch(t, bin, pristine, "")
}

// Tooth 5: a stale rename — one use is rewired to a different register
// that is also defined on every path, so def-before-use has nothing to
// object to.
func TestToothStaleRename(t *testing.T) {
	bin, pristine := teethCompiled(t)
	_, _ = findInstr(t, bin.Procs[0], "sub", func(ins *ir.Instr) bool {
		if ins.Op != ir.OpSub || ins.Src2 == 1 {
			return false
		}
		ins.Src2 = 1 // the loop counter: defined on every path, wrong value
		return true
	})
	requireStructurallyClean(t, bin, pristine)
	requireEquivCatch(t, bin, pristine, "")
}

// Tooth 6: inverted branch sense — the slots of a merged-block branch
// are swapped, sending the hot path cold and vice versa.
func TestToothWrongBranchSense(t *testing.T) {
	bin, pristine := teethCompiled(t)
	_, _ = findInstr(t, bin.Procs[0], "conditional branch", func(ins *ir.Instr) bool {
		if ins.Op != ir.OpBr || ins.Targets[0] == ins.Targets[1] {
			return false
		}
		ins.Targets[0], ins.Targets[1] = ins.Targets[1], ins.Targets[0]
		return true
	})
	requireStructurallyClean(t, bin, pristine)
	requireEquivCatch(t, bin, pristine, "")
}

// Tooth 7: inverted branch condition — cmpeqi becomes cmpnei. The
// instruction shape, dependences, and schedule are identical.
func TestToothWrongCondition(t *testing.T) {
	bin, pristine := teethCompiled(t)
	_, _ = findInstr(t, bin.Procs[0], "cmpeqi", func(ins *ir.Instr) bool {
		if ins.Op != ir.OpCmpEQI {
			return false
		}
		ins.Op = ir.OpCmpNEI
		return true
	})
	requireStructurallyClean(t, bin, pristine)
	requireEquivCatch(t, bin, pristine, "")
}

// Tooth 8: an effect speculated past its guard, with the metadata
// falsified to match — the store of the loop counter (whose operands
// are block live-ins, so no data dependence is violated) moves above
// the preceding exit branch, and its unit annotation is rewritten so
// the schedule still looks internally consistent. Exactly the
// miscompile shape the structural checker cannot see: it trusts the
// metadata the buggy pass also controls.
func TestToothSpeculatedStore(t *testing.T) {
	bin, pristine := teethCompiled(t)
	p := bin.Procs[0]
	var tb *ir.Block
	e, sp := -1, -1
	for _, b := range p.Blocks {
		e, sp = -1, -1
		for i := range b.Instrs {
			op := b.Instrs[i].Op
			if op == ir.OpBr {
				e = i // last branch before the store: nothing crosses any other exit
			}
			if e >= 0 && op == ir.OpStore && b.Instrs[i].Src2 == 1 {
				sp = i
				break
			}
		}
		if e >= 0 && sp > e {
			tb = b
			break
		}
	}
	if tb == nil {
		t.Fatal("no (branch, later store-of-r1) pair in one block")
	}
	tb.Instrs[e], tb.Instrs[sp] = tb.Instrs[sp], tb.Instrs[e]
	// Cycles stay positional (the swapped instructions inherit each
	// other's slots, and the store's operands are live-ins, so every
	// recomputed dependence still holds). The unit annotations are
	// falsified to keep the exit's unit agreeing with ExitUnits and the
	// store looking at home below the guard.
	tb.Units[sp] = tb.Units[e]
	requireStructurallyClean(t, bin, pristine)
	requireEquivCatch(t, bin, pristine, "retired before this exit")
}
