package check

import (
	"fmt"

	"pathsched/internal/core"
	"pathsched/internal/ir"
)

// Superblocks verifies a formation result semantically, independently
// of core's own internal assertions:
//
//   - the superblocks partition each procedure's reachable blocks and
//     the procedure entry heads one;
//   - no superblock has a side entrance: the only edges into a
//     non-head position come from the block immediately before it in
//     the same superblock (tail duplication's whole purpose, §2.1);
//   - every cloned block (tail duplication and enlargement) still
//     matches its original instruction-for-instruction, with branch
//     targets agreeing modulo cloning (the origins of corresponding
//     targets are equal).
func Superblocks(res *core.Result) []Violation {
	var out []Violation
	for _, p := range res.Prog.Procs {
		sbs := res.Superblocks[p.ID]
		out = append(out, checkPartition(p, sbs)...)
		out = append(out, checkClones(p)...)
	}
	return out
}

func checkPartition(p *ir.Proc, sbs []*core.Superblock) []Violation {
	var out []Violation
	bad := func(b ir.BlockID, format string, args ...any) {
		out = append(out, Violation{
			Proc: p.Name, Block: b, Instr: NoInstr,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	type slot struct {
		sb  *core.Superblock
		idx int
	}
	inSB := map[ir.BlockID]slot{}
	for _, sb := range sbs {
		for i, b := range sb.Blocks {
			if p.Block(b) == nil {
				bad(b, "superblock %d names a block outside the procedure", sb.ID)
				continue
			}
			if prev, dup := inSB[b]; dup {
				bad(b, "block in two superblocks (%d and %d)", prev.sb.ID, sb.ID)
				continue
			}
			inSB[b] = slot{sb, i}
		}
	}
	if e, ok := inSB[p.Entry().ID]; !ok || e.idx != 0 {
		bad(p.Entry().ID, "procedure entry does not head a superblock")
	}
	g := ir.NewCFG(p)
	for _, b := range p.Blocks {
		if !g.Reachable(b.ID) {
			continue
		}
		fs, ok := inSB[b.ID]
		if !ok {
			bad(b.ID, "reachable block not covered by any superblock")
			continue
		}
		for _, t := range b.Succs() {
			ts, ok := inSB[t]
			if !ok {
				continue // target's own coverage reported above
			}
			if ts.idx == 0 {
				continue // entering a head is always legal
			}
			if fs.sb == ts.sb && fs.idx == ts.idx-1 {
				continue // intra-superblock fall-through
			}
			bad(b.ID, "side entrance: edge into b%d at position %d of superblock %d", t, ts.idx, ts.sb.ID)
		}
	}
	return out
}

// checkClones verifies that every block whose Origin is another block
// is still an instruction-for-instruction copy of it. Formation only
// ever clones blocks and retargets branches, so any other divergence
// means a pass corrupted a copy. Branch targets themselves may differ
// — a clone's edge may aim at another clone — but corresponding
// targets must be copies of the same original, i.e. share an Origin.
func checkClones(p *ir.Proc) []Violation {
	var out []Violation
	originOf := func(t ir.BlockID) ir.BlockID {
		if tb := p.Block(t); tb != nil {
			return tb.Origin
		}
		return ir.NoBlock
	}
	for _, b := range p.Blocks {
		if b.Origin == b.ID {
			continue
		}
		orig := p.Block(b.Origin)
		if orig == nil {
			continue // ir.Verify reports out-of-range origins
		}
		bad := func(instr int, format string, args ...any) {
			out = append(out, Violation{
				Proc: p.Name, Block: b.ID, Instr: instr,
				Msg: fmt.Sprintf(format, args...),
			})
		}
		if len(b.Instrs) != len(orig.Instrs) {
			bad(NoInstr, "clone of b%d has %d instructions, original has %d", b.Origin, len(b.Instrs), len(orig.Instrs))
			continue
		}
		for i := range b.Instrs {
			c, o := &b.Instrs[i], &orig.Instrs[i]
			switch {
			case c.Op != o.Op:
				bad(i, "clone of b%d diverges: op %s, original %s", b.Origin, c.Op, o.Op)
			case c.Dst != o.Dst || c.Src1 != o.Src1 || c.Src2 != o.Src2:
				bad(i, "clone of b%d diverges: operands %s,%s,%s vs %s,%s,%s",
					b.Origin, c.Dst, c.Src1, c.Src2, o.Dst, o.Src1, o.Src2)
			case c.Imm != o.Imm:
				bad(i, "clone of b%d diverges: imm %d vs %d", b.Origin, c.Imm, o.Imm)
			case c.Callee != o.Callee || len(c.Args) != len(o.Args):
				bad(i, "clone of b%d diverges in call callee/args", b.Origin)
			case c.Spec != o.Spec:
				bad(i, "clone of b%d diverges: Spec %v vs %v", b.Origin, c.Spec, o.Spec)
			case len(c.Targets) != len(o.Targets):
				bad(i, "clone of b%d diverges: %d targets vs %d", b.Origin, len(c.Targets), len(o.Targets))
			default:
				for k := range c.Args {
					if c.Args[k] != o.Args[k] {
						bad(i, "clone of b%d diverges: arg %d is %s, original %s", b.Origin, k, c.Args[k], o.Args[k])
					}
				}
				for k := range c.Targets {
					ct, ot := c.Targets[k], o.Targets[k]
					if (ct == ir.NoBlock) != (ot == ir.NoBlock) {
						bad(i, "clone of b%d diverges: target slot %d fall-through mismatch", b.Origin, k)
						continue
					}
					if ct == ir.NoBlock {
						continue
					}
					if originOf(ct) != originOf(ot) {
						bad(i, "clone of b%d diverges: target slot %d aims at a copy of b%d, original at a copy of b%d",
							b.Origin, k, originOf(ct), originOf(ot))
					}
				}
			}
		}
	}
	return out
}
