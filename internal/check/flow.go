package check

import (
	"fmt"
	"sort"

	"pathsched/internal/ir"
	"pathsched/internal/profile"
)

// seqEnt is one indexed path-profile entry as PathFlow sweeps it:
// hashes of the key with and without its last block, the key's first
// eight bytes (its first block pair) and length, and its frequency.
// Deliberately no pointer to the key itself — the snapshot of a large
// benchmark's index runs to millions of entries, and keeping it
// pointer-free makes it invisible to the garbage collector's mark
// phase. The rare entry that needs its key back (a bound violation)
// is resolved by hash in a second index sweep.
type seqEnt struct {
	hPrefix, hFull uint64
	pair           uint64
	n              int64
	ln             int32
}

// prefixHashes returns FNV-1a hashes (with a final avalanche mix, so
// low bits index a table well) of the key minus its last block and of
// the whole key, folding one four-byte block-id word per multiply.
// The fold schedule is a pure function of byte position, so the
// prefix hash of a key equals the full hash of that prefix as its own
// key — the identity the extension-sum accumulator relies on.
func prefixHashes(s string) (hPrefix, hFull uint64) {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for len(s) > 4 {
		w := uint32(s[0]) | uint32(s[1])<<8 | uint32(s[2])<<16 | uint32(s[3])<<24
		h = (h ^ uint64(w)) * prime64
		s = s[4:]
	}
	hPrefix = mix64(h)
	if len(s) == 4 {
		w := uint32(s[0]) | uint32(s[1])<<8 | uint32(s[2])<<16 | uint32(s[3])<<24
		h = (h ^ uint64(w)) * prime64
	}
	return hPrefix, mix64(h)
}

// mix64 is the splitmix64 finalizer.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	if h == 0 { // 0 marks an empty sumTable slot
		h = 1
	}
	return h
}

// sumTable is an open-addressed hash accumulator: add groups values
// under a 64-bit key, get reads a group's total. Slots hold the full
// hash, so two groups merge only on a genuine 64-bit collision — and
// merging only inflates totals, which PathFlow's exact recheck
// filters back out. One flat array keeps a probe to about one cache
// line, where a map[uint64]int64 of millions of entries costs several.
type sumTable struct {
	slots []sumSlot
	mask  uint64
}

type sumSlot struct {
	h uint64 // 0 = empty
	v int64
}

// reset prepares the table for n groups, reusing the backing array
// when it is big enough (one sweep serves every procedure of a
// program with a single allocation sized for the largest).
func (t *sumTable) reset(n int) {
	sz := 16
	for sz < 2*n {
		sz <<= 1
	}
	if sz <= cap(t.slots) {
		t.slots = t.slots[:sz]
		clear(t.slots)
	} else {
		t.slots = make([]sumSlot, sz)
	}
	t.mask = uint64(sz - 1)
}

func (t *sumTable) add(h uint64, v int64) {
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if s.h == h {
			s.v += v
			return
		}
		if s.h == 0 {
			s.h, s.v = h, v
			return
		}
	}
}

func (t *sumTable) get(h uint64) int64 {
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if s.h == h {
			return s.v
		}
		if s.h == 0 {
			return 0
		}
	}
}

// EdgeFlow verifies Kirchhoff's law over an edge profile gathered from
// a completed run of prog: for every block, executions equal the edge
// traversals into it (plus procedure entries for the entry block);
// edge traversals out of it equal its executions, except that a
// ret-terminated block may keep the balance as returns — and summed
// over the procedure those returns must equal the entries. A corrupted
// or miscounted profile breaks one of these identities at the block
// where it happened.
func EdgeFlow(prog *ir.Program, ep *profile.EdgeProfile) []Violation {
	var out []Violation
	for pid, p := range prog.Procs {
		pid := ir.ProcID(pid)
		if int(pid) >= ep.NumProcs() {
			break
		}
		bad := func(b ir.BlockID, format string, args ...any) {
			out = append(out, Violation{
				Proc: p.Name, Block: b, Instr: NoInstr,
				Msg: fmt.Sprintf(format, args...),
			})
		}
		entries := ep.Entries(pid)
		var retSlack int64
		for _, b := range p.Blocks {
			freq := ep.BlockFreq(pid, b.ID)
			var inflow, outflow int64
			ep.ForEachPred(pid, b.ID, func(_ ir.BlockID, n int64) { inflow += n })
			ep.ForEachSucc(pid, b.ID, func(_ ir.BlockID, n int64) { outflow += n })
			want := inflow
			if b.ID == p.Entry().ID {
				want += entries
			}
			if freq != want {
				bad(b.ID, "flow into block: executed %d times but inflow is %d (%d edge + %d entry)",
					freq, want, inflow, want-inflow)
			}
			if b.Terminator().Op == ir.OpRet {
				if outflow > freq {
					bad(b.ID, "flow out of ret block: outflow %d exceeds %d executions", outflow, freq)
				} else {
					retSlack += freq - outflow
				}
			} else if outflow != freq {
				bad(b.ID, "flow out of block: executed %d times but outflow is %d", freq, outflow)
			}
		}
		if retSlack != entries {
			bad(ir.NoBlock, "returns %d != entries %d", retSlack, entries)
		}
	}
	return out
}

// PathFlow verifies the internal consistency of a path profile: every
// recorded sequence is bounded by each of its adjacent-pair
// frequencies (a path cannot run more often than any edge inside it —
// the prefix-bound that makes the paper's Figure 1 comparison
// meaningful), and the one-block extensions of a sequence cannot sum
// to more than the sequence itself ran. When ep is the edge profile of
// the *same* run and the path windows were per-activation, the two
// profiles are two codings of one event stream, so their block
// frequencies must agree exactly — and their edge frequencies too,
// when the depth bound cannot truncate a two-block window.
//
// The pair bound is checked only against each indexed sequence's
// *first* pair, which covers every interior pair transitively: the
// suffix index gives Freq(seq) ≤ Freq(seq[i:]) by construction (every
// window counting toward seq also counts toward its suffixes), and
// seq[i:] is itself indexed, so its own first-pair check bounds
// Freq(seq[i:]) by Freq(seq[i], seq[i+1]).
//
// The sweep itself avoids per-entry probes of the (huge, long-keyed)
// index maps. Pair frequencies are exactly the two-block entries, so
// one pass collects them into a table small enough to stay in cache.
// The extension-sum bound groups every entry under its
// all-but-last-block prefix via an open-addressed accumulator keyed
// by full 64-bit hashes: a hash collision (a ~2^-64 event) can only
// merge sums upward, so a clean profile can at worst produce a false
// candidate, and every candidate is re-verified with exact probes
// before it becomes a violation — the fast path loses no soundness
// and no detection power. Both hashes an entry needs (its own and its
// prefix's) fall out of one pass over its key bytes. gcc's training
// profile (2.4M indexed sequences, 120-byte average key) checks in
// under a second this way; per-entry string probes took several.
func PathFlow(prog *ir.Program, pp *profile.PathProfile, ep *profile.EdgeProfile) []Violation {
	var out []Violation
	crossCheck := ep != nil && !pp.CrossActivation()
	var ents []seqEnt // reused across procs
	var acc sumTable  // likewise
	for pid, p := range prog.Procs {
		pid := ir.ProcID(pid)
		if int(pid) >= pp.NumProcs() {
			break
		}
		bad := func(b ir.BlockID, format string, args ...any) {
			out = append(out, Violation{
				Proc: p.Name, Block: b, Instr: NoInstr,
				Msg: fmt.Sprintf(format, args...),
			})
		}
		const kb = 4 // key bytes per block id
		// One pass over the index: snapshot the entries with their
		// hashes, and collect the two-block entries keyed by their raw
		// bytes — the exact pair frequencies every longer entry is
		// bounded by.
		if n := pp.NumSeqs(pid); cap(ents) < n {
			ents = make([]seqEnt, 0, n)
		}
		ents = ents[:0]
		pairF := map[uint64]int64{}
		pp.ForEachSeqKey(pid, func(key string, n int64) {
			hp, hf := prefixHashes(key)
			e := seqEnt{hPrefix: hp, hFull: hf, n: n, ln: int32(len(key))}
			if len(key) >= 2*kb {
				e.pair = uint64(key[0]) | uint64(key[1])<<8 | uint64(key[2])<<16 | uint64(key[3])<<24 |
					uint64(key[4])<<32 | uint64(key[5])<<40 | uint64(key[6])<<48 | uint64(key[7])<<56
			}
			ents = append(ents, e)
			if len(key) == 2*kb {
				pairF[e.pair] = n
			}
		})
		if len(ents) == 0 {
			continue
		}
		// First-pair bound (exact: pairF is keyed by raw bytes), edge
		// agreement for the two-block entries, and child sums grouped
		// under each entry's all-but-last-block prefix (the extensions
		// of H are exactly the entries H+x, so acc.add(hash(H))
		// accumulates their total). Violating entries are only known by
		// hash here; collect them and recover their keys below.
		acc.reset(len(ents))
		candidates := map[uint64]bool{}
		for _, e := range ents {
			if e.ln < 2*kb {
				continue
			}
			if e.n > pairF[e.pair] {
				candidates[e.hFull] = true
			}
			acc.add(e.hPrefix, e.n)
			if crossCheck && e.ln == 2*kb && pp.Depth() >= 2 {
				from, to := ir.BlockID(uint32(e.pair)), ir.BlockID(uint32(e.pair>>32))
				if en := ep.EdgeFreq(pid, from, to); en != e.n {
					bad(from, "edge %s: path profile says %d, edge profile says %d",
						profile.FmtSeq([]ir.BlockID{from, to}), e.n, en)
				}
			}
		}
		// Extension-sum bound. The accumulated sum is exact up to hash
		// collisions, which can only merge groups and inflate it — so
		// every true violation lands in candidates, and the exact
		// recheck below discards any impostors.
		for _, e := range ents {
			if acc.get(e.hFull) > e.n {
				candidates[e.hFull] = true
			}
		}
		// Candidate resolution: a second index sweep maps the offending
		// hashes back to their keys (none on a clean profile) and
		// re-runs both bounds with exact probes.
		if len(candidates) > 0 {
			pp.ForEachSeqKey(pid, func(key string, n int64) {
				if _, hf := prefixHashes(key); !candidates[hf] {
					return
				}
				if len(key) >= 2*kb {
					if pn := pp.FreqKey(pid, key[:2*kb]); n > pn {
						seq := profile.DecodeKey(key)
						bad(seq[0], "path %s ran %d times, but its edge %s only %d",
							profile.FmtSeq(seq), n, profile.FmtSeq(seq[:2]), pn)
					}
				}
				if succSum := pp.SuccTotalKey(pid, key); succSum > n {
					seq := profile.DecodeKey(key)
					bad(seq[0], "path %s ran %d times but its extensions sum to %d",
						profile.FmtSeq(seq), n, succSum)
				}
			})
		}
		if crossCheck {
			for _, b := range p.Blocks {
				if pn, en := pp.BlockFreq(pid, b.ID), ep.BlockFreq(pid, b.ID); pn != en {
					bad(b.ID, "block frequency: path profile says %d, edge profile says %d", pn, en)
				}
				if pp.Depth() >= 2 {
					ep.ForEachSucc(pid, b.ID, func(to ir.BlockID, en int64) {
						if pn := pp.EdgeFreq(pid, b.ID, to); pn != en {
							bad(b.ID, "edge b%d→b%d: edge profile says %d, path profile says %d", b.ID, to, en, pn)
						}
					})
				}
			}
		}
	}
	// ForEachSeq iterates a map; order the findings for deterministic
	// diagnostics.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		if out[i].Block != out[j].Block {
			return out[i].Block < out[j].Block
		}
		return out[i].Msg < out[j].Msg
	})
	return out
}
