package check_test

import (
	"testing"

	"pathsched/internal/check"
	"pathsched/internal/ir"
	"pathsched/internal/machine"
	"pathsched/internal/sched"
)

// Teeth for exact mode: the branch-and-bound scheduler claims its
// schedules obey exactly the rules check.Schedules enforces. Each test
// compiles with exact scheduling, confirms the checker accepts the
// clean result, corrupts one schedule the way a search bug would, and
// asserts check.SchedulesWithDeps still bites.

// exactCompiled forms, compacts under exact scheduling with dependence
// recording, and confirms both checker paths accept the clean result.
func exactCompiled(t *testing.T) (*ir.Program, sched.BlockDeps) {
	t.Helper()
	res, _, _ := form(t)
	rec := sched.BlockDeps{}
	opts := sched.Options{Exact: sched.ExactConfig{Enabled: true}, RecordDeps: rec}
	if err := sched.Compact(res, opts); err != nil {
		t.Fatalf("Compact(exact): %v", err)
	}
	mc := machine.Default()
	if vs := check.Schedules(res.Prog, mc); len(vs) != 0 {
		t.Fatalf("checker rejects clean exact compile: %v", vs[0])
	}
	if vs := check.SchedulesWithDeps(res.Prog, mc, rec); len(vs) != 0 {
		t.Fatalf("recorded checker rejects clean exact compile: %v", vs[0])
	}
	return res.Prog, rec
}

// Corruption 1: shrink a latency-carrying RAW dependence to zero
// cycles in an exact schedule.
func TestExactTeethRAWViolation(t *testing.T) {
	prog, rec := exactCompiled(t)
	mc := machine.Default()
	p := prog.Proc(0)
	live := sched.LiveIn(p)
	for _, b := range p.Blocks {
		if b.Cycles == nil {
			continue
		}
		items := make([]sched.DepItem, len(b.Instrs))
		for i := range b.Instrs {
			items[i] = sched.DepItem{Ins: b.Instrs[i], IsExit: b.ExitUnits[i] != 0}
			if items[i].IsExit {
				for _, tg := range b.Instrs[i].Targets {
					if tg != ir.NoBlock {
						items[i].LiveOut.Union(live[tg])
					}
				}
			}
		}
		for _, e := range sched.Dependences(items, mc) {
			if e.Kind != sched.DepRAW || e.Lat < 1 || e.To == len(b.Instrs)-1 {
				continue
			}
			b.Cycles[e.To] = b.Cycles[e.From] // needs From+Lat
			vs := check.SchedulesWithDeps(prog, mc, rec)
			v := requireViolation(t, vs, "RAW dependence violated")
			if v.Block != b.ID || v.Instr != e.To {
				t.Fatalf("violation at b%d instr %d, mutated b%d instr %d", v.Block, v.Instr, b.ID, e.To)
			}
			return
		}
	}
	t.Fatal("no RAW edge found to mutate in any exact-scheduled block")
}

// Corruption 2: collapse an exact schedule into one cycle — overflowing
// the machine's issue width (and its branch slot).
func TestExactTeethWidthOverflow(t *testing.T) {
	prog, rec := exactCompiled(t)
	mc := machine.Default()
	p := prog.Proc(0)
	for _, b := range p.Blocks {
		if b.Cycles == nil || len(b.Instrs) <= mc.FuncUnits {
			continue
		}
		for i := range b.Cycles {
			b.Cycles[i] = 0
		}
		b.Span = 1
		vs := check.SchedulesWithDeps(prog, mc, rec)
		v := requireViolation(t, vs, "functional units")
		if v.Block != b.ID {
			t.Fatalf("violation at b%d, mutated b%d", v.Block, b.ID)
		}
		requireViolation(t, vs, "control operations")
		return
	}
	t.Fatalf("no exact-scheduled block wider than %d instructions", mc.FuncUnits)
}

// Corruption 3: branch-slot misuse — drag a later exit branch into an
// earlier branch's cycle, issuing two control operations where the
// machine has one slot.
func TestExactTeethBranchSlotMisuse(t *testing.T) {
	prog, rec := exactCompiled(t)
	mc := machine.Default()
	p := prog.Proc(0)
	for _, b := range p.Blocks {
		if b.Cycles == nil {
			continue
		}
		first := -1
		for i := range b.Instrs {
			if !b.Instrs[i].Op.IsBranch() {
				continue
			}
			if first < 0 {
				first = i
				continue
			}
			if b.Cycles[i] == b.Cycles[first] {
				t.Fatalf("clean exact schedule already issues two branches in cycle %d", b.Cycles[i])
			}
			b.Cycles[i] = b.Cycles[first]
			vs := check.SchedulesWithDeps(prog, mc, rec)
			v := requireViolation(t, vs, "control operations")
			if v.Block != b.ID {
				t.Fatalf("violation at b%d, mutated b%d", v.Block, b.ID)
			}
			return
		}
	}
	t.Fatal("no exact-scheduled block with two branches")
}
