package check_test

import (
	"testing"

	"pathsched/internal/check"
	"pathsched/internal/machine"
	"pathsched/internal/sched"
)

// A clean compile must pass the schedule checker identically whether
// the dependences are recomputed from the emitted order or taken from
// the scheduler's recording — and the recording must actually cover
// scheduled blocks (otherwise the fast path silently degrades).
func TestSchedulesRecordedMatchesRecomputed(t *testing.T) {
	res, _, _ := form(t)
	rec := sched.BlockDeps{}
	if err := sched.Compact(res, sched.Options{RecordDeps: rec}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	mc := machine.Default()
	if vs := check.Schedules(res.Prog, mc); len(vs) != 0 {
		t.Fatalf("recomputed check rejects clean compile: %v", vs[0])
	}
	if vs := check.SchedulesWithDeps(res.Prog, mc, rec); len(vs) != 0 {
		t.Fatalf("recorded check rejects clean compile: %v", vs[0])
	}
	covered := 0
	for _, p := range res.Prog.Procs {
		for _, b := range p.Blocks {
			if b.Cycles == nil {
				continue
			}
			if _, ok := rec[b]; ok {
				covered++
			}
		}
	}
	if covered == 0 {
		t.Fatal("recording covers no scheduled block — fast path never taken")
	}
}

// Both the recorded and the recomputed paths must catch a corrupted
// cycle assignment: teeth for the fast path, so recording can never
// become a skipped check.
func TestSchedulesRecordedCatchesCorruption(t *testing.T) {
	res, _, _ := form(t)
	rec := sched.BlockDeps{}
	if err := sched.Compact(res, sched.Options{RecordDeps: rec}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	mc := machine.Default()
	// Find a scheduled block whose last instruction issues after its
	// first, and drag it to cycle 0 — violating the control/flow
	// dependences into the terminator.
	corrupted := false
	for _, p := range res.Prog.Procs {
		for _, b := range p.Blocks {
			n := len(b.Instrs)
			if b.Cycles == nil || n < 2 || b.Cycles[n-1] <= b.Cycles[0] {
				continue
			}
			b.Cycles[n-1] = 0
			corrupted = true
			break
		}
		if corrupted {
			break
		}
	}
	if !corrupted {
		t.Fatal("no multi-cycle scheduled block to corrupt")
	}
	if vs := check.Schedules(res.Prog, mc); len(vs) == 0 {
		t.Fatal("recomputed check missed the corrupted cycle")
	}
	if vs := check.SchedulesWithDeps(res.Prog, mc, rec); len(vs) == 0 {
		t.Fatal("recorded check missed the corrupted cycle")
	}
}

// A recorded edge pointing outside the block must be reported as a
// violation, not dereferenced.
func TestSchedulesRecordedBoundsChecked(t *testing.T) {
	prog := compiled(t)
	mc := machine.Default()
	rec := sched.BlockDeps{}
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			if b.Cycles != nil {
				rec[b] = []sched.DepEdge{{From: 0, To: len(b.Instrs) + 5, Lat: 1, Kind: sched.DepRAW}}
			}
		}
	}
	vs := check.SchedulesWithDeps(prog, mc, rec)
	requireViolation(t, vs, "outside the block")
}
