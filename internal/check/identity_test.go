package check_test

import (
	"regexp"
	"testing"

	"pathsched/internal/check"
	"pathsched/internal/ir"
	"pathsched/internal/machine"
	"pathsched/internal/sched"
	"pathsched/internal/validate"
)

// Every violation any analysis emits must carry full identity: the
// procedure always, the block whenever one is at fault (ir.NoBlock
// otherwise — never a zero-value BlockID masquerading as b0), the
// instruction index when one is at fault. The rendered form is the
// uniform `check[stage]: proc "name" [block bN] [instr K]: msg`. This
// test provokes real violations from several analyses plus the
// translation validator and pins that contract.
var renderRE = regexp.MustCompile(`^check\[[a-z]+\]: proc "[^"]+"( block b\d+)?( instr \d+)?: .+`)

func requireIdentity(t *testing.T, analysis string, vs []check.Violation) {
	t.Helper()
	if len(vs) == 0 {
		t.Fatalf("%s produced no violations — test setup broken", analysis)
	}
	for _, v := range vs {
		if v.Proc == "" {
			t.Errorf("%s violation lacks proc identity: %+v", analysis, v)
		}
		v.Stage = "test"
		if !renderRE.MatchString(v.String()) {
			t.Errorf("%s violation renders off-format: %s", analysis, v)
		}
	}
}

// undefProg reads a virtual register no path ever writes.
func undefProg() *ir.Program {
	bd := ir.NewBuilder("undef", 8)
	pb := bd.Proc("main")
	b := pb.NewBlock()
	b.Add(ir.Add(1, ir.Reg(ir.PhysRegs+10), ir.Reg(ir.PhysRegs+10)))
	b.Ret(1)
	return bd.Finish()
}

func TestDefBeforeUseIdentity(t *testing.T) {
	prog := undefProg()
	requireIdentity(t, "DefBeforeUse", check.DefBeforeUse(prog, check.BaselineOf(prog)))
}

func TestSchedulesIdentity(t *testing.T) {
	bd := ir.NewBuilder("sched", 8)
	pb := bd.Proc("main")
	b := pb.NewBlock()
	b.Add(ir.MovI(1, 5), ir.Add(2, 1, 1))
	b.Ret(2)
	prog := bd.Finish()
	// A schedule placing a use in the same cycle as its def.
	blk := prog.Procs[0].Blocks[0]
	blk.Cycles = []int32{0, 0, 0}
	blk.Units = []int32{0, 1, 2}
	requireIdentity(t, "Schedules", check.Schedules(prog, machine.Default()))
}

func TestEquivIdentity(t *testing.T) {
	bd := ir.NewBuilder("equiv", 8)
	pb := bd.Proc("main")
	b := pb.NewBlock()
	b.Add(ir.MovI(1, 7), ir.Store(1, 0, 1))
	b.Ret(1)
	pristine := bd.Finish()
	bin := ir.CloneProgram(pristine)
	if err := sched.CompactBasicBlocks(bin, sched.Options{}); err != nil {
		t.Fatal(err)
	}
	dropped := false
	for _, blk := range bin.Procs[0].Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == ir.OpStore {
				blk.Instrs[i] = ir.Nop()
				dropped = true
			}
		}
	}
	if !dropped {
		t.Fatal("compiled program has no store to drop")
	}
	_, vs := check.Equiv(pristine, bin, validate.Options{})
	requireIdentity(t, "Equiv", vs)
}

// A proc-level violation must omit the block clause entirely, not
// render the zero-value BlockID as "block b0".
func TestProcLevelViolationOmitsBlock(t *testing.T) {
	v := check.Violation{Stage: "x", Proc: "main", Block: ir.NoBlock, Instr: check.NoInstr, Msg: "m"}
	if got, want := v.String(), `check[x]: proc "main": m`; got != want {
		t.Fatalf("proc-level rendering drifted: got %q want %q", got, want)
	}
	v.Block, v.Instr = 0, 0
	if got, want := v.String(), `check[x]: proc "main" block b0 instr 0: m`; got != want {
		t.Fatalf("block-zero rendering drifted: got %q want %q", got, want)
	}
}
