package stats

import (
	"strings"
	"testing"

	"pathsched/internal/pipeline"
)

func fakeResults() []*pipeline.Result {
	mk := func(name string, cycles map[pipeline.Scheme][2]int64) *pipeline.Result {
		r := &pipeline.Result{
			Name:          name,
			Category:      "test",
			Description:   "fabricated",
			OrigCodeBytes: 2048,
			ByScheme:      map[pipeline.Scheme]*pipeline.Measurement{},
		}
		for s, c := range cycles {
			r.ByScheme[s] = &pipeline.Measurement{
				Scheme:            s,
				IdealCycles:       c[0],
				Cycles:            c[1],
				FetchStall:        c[1] - c[0],
				DynInstrs:         c[0] * 2,
				DynBranches:       c[0] / 4,
				CacheAccesses:     1000,
				CacheMisses:       10,
				MissRate:          0.01,
				SBEntries:         100,
				AvgBlocksExecuted: 3.5,
				AvgSBSize:         5.0,
			}
		}
		return r
	}
	return []*pipeline.Result{
		mk("aaa", map[pipeline.Scheme][2]int64{
			pipeline.SchemeBB:  {2000, 2100},
			pipeline.SchemeM4:  {1000, 1100},
			pipeline.SchemeM16: {900, 1050},
			pipeline.SchemeP4:  {800, 900},
			pipeline.SchemeP4e: {950, 1000},
		}),
		mk("bbb", map[pipeline.Scheme][2]int64{
			pipeline.SchemeBB:  {4000, 4400},
			pipeline.SchemeM4:  {2000, 2200},
			pipeline.SchemeM16: {2000, 2600},
			pipeline.SchemeP4:  {1500, 1700},
			pipeline.SchemeP4e: {1800, 1900},
		}),
	}
}

func TestTable1Render(t *testing.T) {
	out := Table1(fakeResults())
	for _, want := range []string{"aaa", "bbb", "2.0", "branches(K)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4Normalization(t *testing.T) {
	out := Figure4(fakeResults())
	if !strings.Contains(out, "0.800") { // aaa: 800/1000
		t.Errorf("Figure4 missing normalized 0.800:\n%s", out)
	}
	if !strings.Contains(out, "0.750") { // bbb: 1500/2000
		t.Errorf("Figure4 missing normalized 0.750:\n%s", out)
	}
}

func TestFigure5UsesCacheCycles(t *testing.T) {
	out := Figure5(fakeResults())
	// aaa with cache: P4 900/1100 = 0.818.
	if !strings.Contains(out, "0.818") {
		t.Errorf("Figure5 should normalize cache cycles:\n%s", out)
	}
}

func TestFigure6Schemes(t *testing.T) {
	out := Figure6(fakeResults())
	if !strings.Contains(out, "P4e") || !strings.Contains(out, "M16") {
		t.Errorf("Figure6 missing schemes:\n%s", out)
	}
	// bbb M16 cache: 2600/2200 = 1.182.
	if !strings.Contains(out, "1.182") {
		t.Errorf("Figure6 normalization wrong:\n%s", out)
	}
}

func TestFigure7AndMissRates(t *testing.T) {
	f7 := Figure7(fakeResults())
	if !strings.Contains(f7, "3.50/5.00") {
		t.Errorf("Figure7 missing exec/size:\n%s", f7)
	}
	mr := MissRates(fakeResults())
	if !strings.Contains(mr, "1.00%") {
		t.Errorf("MissRates missing rate:\n%s", mr)
	}
}

func TestSummaryGeomean(t *testing.T) {
	out := Summary(fakeResults())
	// P4 ideal: sqrt(0.8 * 0.75) = 0.7746.
	if !strings.Contains(out, "0.775") {
		t.Errorf("Summary geomean wrong:\n%s", out)
	}
}

func TestRenderersTolerateMissingSchemes(t *testing.T) {
	res := fakeResults()
	delete(res[0].ByScheme, pipeline.SchemeP4e)
	delete(res[1].ByScheme, pipeline.SchemeM4) // even the baseline
	for _, render := range []func([]*pipeline.Result) string{
		Table1, Figure4, Figure5, Figure6, Figure7, MissRates, Summary,
	} {
		if out := render(res); out == "" {
			t.Error("renderer returned empty output on partial data")
		}
	}
}

func TestBar(t *testing.T) {
	if got := bar(0.5, 1.0, 10); strings.Count(got, "█") != 5 {
		t.Errorf("bar(0.5) = %q", got)
	}
	if got := bar(2.0, 1.0, 10); strings.Count(got, "█") != 10 {
		t.Errorf("bar clamps at width: %q", got)
	}
	if got := bar(-1, 1.0, 10); strings.Count(got, "█") != 0 {
		t.Errorf("bar clamps at zero: %q", got)
	}
	if got := bar(1, 0, 10); got != "" {
		t.Errorf("bar with zero max: %q", got)
	}
}

func TestJSONSerialization(t *testing.T) {
	out, err := JSON(fakeResults())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"Name": "aaa"`, `"P4"`, `"IdealCycles": 800`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}
