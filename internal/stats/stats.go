// Package stats renders the paper's tables and figures from pipeline
// measurements as plain text: Table 1 (benchmark characteristics),
// Figure 4 (ideal-cache normalized cycles, P4 vs M4), Figure 5 (cache
// cycles, P4/P4e vs M4), Figure 6 (cache cycles, P4e/M16 vs M4),
// Figure 7 (dynamic superblock statistics), and the §4 miss-rate
// comparison.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"pathsched/internal/pipeline"
	"pathsched/internal/validate"
)

// bar renders v in [0, max] as a proportional bar.
func bar(v, max float64, width int) string {
	if max <= 0 {
		return ""
	}
	n := int(v/max*float64(width) + 0.5)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}

// ratio returns a/b guarding against division by zero.
func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Table1 renders benchmark descriptions and baseline (basic-block
// scheduled, ideal cache) dynamic counts. The paper reports counts in
// millions on full SPEC inputs; this reproduction's inputs are scaled
// down, so counts are reported in thousands.
func Table1(results []*pipeline.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: benchmarks, data sets, and statistics (BB-scheduled baseline)\n")
	fmt.Fprintf(&sb, "%-8s %-11s %-44s %9s %12s %12s %12s\n",
		"bench", "category", "description", "size(KB)", "branches(K)", "cycles(K)", "instrs(K)")
	for _, r := range results {
		m := r.ByScheme[pipeline.SchemeBB]
		if m == nil {
			continue
		}
		fmt.Fprintf(&sb, "%-8s %-11s %-44s %9.1f %12.1f %12.1f %12.1f\n",
			r.Name, r.Category, r.Description,
			float64(r.OrigCodeBytes)/1024,
			float64(m.DynBranches)/1000,
			float64(m.IdealCycles)/1000,
			float64(m.DynInstrs)/1000)
	}
	return sb.String()
}

// normalized renders one normalized-cycles figure: for each benchmark,
// cycles of each scheme divided by the baseline scheme's cycles.
func normalized(title string, results []*pipeline.Result, base pipeline.Scheme,
	schemes []pipeline.Scheme, useCache bool) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	fmt.Fprintf(&sb, "%-8s", "bench")
	for _, s := range schemes {
		fmt.Fprintf(&sb, " %6s", s)
	}
	fmt.Fprintf(&sb, "   (1.00 = %s; lower is better)\n", base)
	cyc := func(m *pipeline.Measurement) int64 {
		if useCache {
			return m.Cycles
		}
		return m.IdealCycles
	}
	for _, r := range results {
		bm := r.ByScheme[base]
		if bm == nil {
			continue
		}
		fmt.Fprintf(&sb, "%-8s", r.Name)
		var worst float64
		vals := make([]float64, len(schemes))
		for i, s := range schemes {
			m := r.ByScheme[s]
			if m == nil {
				continue
			}
			vals[i] = ratio(cyc(m), cyc(bm))
			if vals[i] > worst {
				worst = vals[i]
			}
		}
		for _, v := range vals {
			fmt.Fprintf(&sb, " %6.3f", v)
		}
		// Bar for the first scheme, the figure's primary series.
		fmt.Fprintf(&sb, "   %s\n", bar(vals[0], 1.25, 30))
	}
	return sb.String()
}

// Figure4 is the ideal-I-cache comparison: P4 normalized to M4, both
// at unroll factor 4.
func Figure4(results []*pipeline.Result) string {
	return normalized(
		"Figure 4: normalized cycle counts, path-based (P4) vs edge-based (M4), ideal I-cache",
		results, pipeline.SchemeM4, []pipeline.Scheme{pipeline.SchemeP4}, false)
}

// Figure5 adds the 32KB direct-mapped I-cache: P4 and P4e vs M4.
func Figure5(results []*pipeline.Result) string {
	return normalized(
		"Figure 5: normalized cycle counts with 32KB direct-mapped I-cache: P4 and P4e vs M4",
		results, pipeline.SchemeM4,
		[]pipeline.Scheme{pipeline.SchemeP4, pipeline.SchemeP4e}, true)
}

// Figure6 asks whether aggressive unrolling (M16) beats exploiting
// paths at unroll 4 (P4e), with the I-cache.
func Figure6(results []*pipeline.Result) string {
	return normalized(
		"Figure 6: normalized cycle counts with I-cache: P4e and M16 vs M4",
		results, pipeline.SchemeM4,
		[]pipeline.Scheme{pipeline.SchemeP4e, pipeline.SchemeM16}, true)
}

// Figure7 reports, per benchmark and scheme, the dynamically weighted
// number of constituent blocks executed per superblock entry (gray bar
// in the paper) against the superblock's size in blocks (white
// extension).
func Figure7(results []*pipeline.Result) string {
	schemes := []pipeline.Scheme{pipeline.SchemeM4, pipeline.SchemeM16,
		pipeline.SchemeP4e, pipeline.SchemeP4}
	var sb strings.Builder
	sb.WriteString("Figure 7: blocks executed per dynamic superblock (exec) vs superblock size (size)\n")
	fmt.Fprintf(&sb, "%-8s", "bench")
	for _, s := range schemes {
		fmt.Fprintf(&sb, " %14s", s)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-8s", "")
	for range schemes {
		fmt.Fprintf(&sb, " %6s/%-7s", "exec", "size")
	}
	sb.WriteString("\n")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-8s", r.Name)
		for _, s := range schemes {
			m := r.ByScheme[s]
			if m == nil {
				fmt.Fprintf(&sb, " %14s", "-")
				continue
			}
			fmt.Fprintf(&sb, " %6.2f/%-7.2f", m.AvgBlocksExecuted, m.AvgSBSize)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// MissRates reports I-cache miss rates per scheme (the §4 discussion
// highlights gcc and go, where path-based code expansion raises the
// rate).
func MissRates(results []*pipeline.Result) string {
	schemes := []pipeline.Scheme{pipeline.SchemeM4, pipeline.SchemeM16,
		pipeline.SchemeP4e, pipeline.SchemeP4}
	var sb strings.Builder
	sb.WriteString("I-cache miss rates (32KB direct-mapped, 32B lines)\n")
	fmt.Fprintf(&sb, "%-8s %10s", "bench", "code(KB)")
	for _, s := range schemes {
		fmt.Fprintf(&sb, " %8s", s)
	}
	sb.WriteString("\n")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-8s %10.1f", r.Name, float64(r.OrigCodeBytes)/1024)
		for _, s := range schemes {
			m := r.ByScheme[s]
			if m == nil {
				fmt.Fprintf(&sb, " %8s", "-")
				continue
			}
			fmt.Fprintf(&sb, " %7.2f%%", m.MissRate*100)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// GapTable renders the gap-to-optimal comparison from an exact-mode
// run (-gapstats): per benchmark and scheme, the list scheduler's span
// quality as a percentage of the provably optimal span, summed over
// the regions the branch-and-bound search completed (proved), plus how
// many regions fell back to the list schedule (bounded) and how many
// proved regions the exact schedule strictly improved. 100.0% means
// every proved region's list schedule was already optimal.
func GapTable(results []*pipeline.Result) string {
	schemes := []pipeline.Scheme{pipeline.SchemeM4, pipeline.SchemeP4}
	var sb strings.Builder
	sb.WriteString("Gap to optimal: list-scheduler span as % of exact (branch-and-bound) span\n")
	fmt.Fprintf(&sb, "%-8s", "bench")
	for _, s := range schemes {
		fmt.Fprintf(&sb, " %7s %22s", s, "proved/bounded/impr")
	}
	sb.WriteString("\n")
	var tot [2]struct{ list, exact, proved, bounded, improved int64 }
	rows := 0
	for _, r := range results {
		line := fmt.Sprintf("%-8s", r.Name)
		any := false
		for i, s := range schemes {
			m := r.ByScheme[s]
			if m == nil || m.Gap == nil {
				line += fmt.Sprintf(" %7s %22s", "-", "-")
				continue
			}
			g := m.Gap
			line += fmt.Sprintf(" %6.2f%% %12d/%4d/%4d", g.PctOfOptimal(), g.Proved, g.Bounded, g.Improved)
			tot[i].list += g.ListSpan
			tot[i].exact += g.ExactSpan
			tot[i].proved += g.Proved
			tot[i].bounded += g.Bounded
			tot[i].improved += g.Improved
			any = true
		}
		if any {
			sb.WriteString(line + "\n")
			rows++
		}
	}
	if rows == 0 {
		sb.WriteString("(no gap data: run with exact scheduling enabled)\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "%-8s", "total")
	for i := range schemes {
		pct := 100.0
		if tot[i].list > 0 {
			pct = 100 * float64(tot[i].exact) / float64(tot[i].list)
		}
		fmt.Fprintf(&sb, " %6.2f%% %12d/%4d/%4d", pct, tot[i].proved, tot[i].bounded, tot[i].improved)
	}
	sb.WriteString("\n")
	return sb.String()
}

// ValidationTable renders the translation-validation tally of each
// measured compile (the -validate report). A failed procedure can
// never reach this table — a validation failure aborts the compile and
// the whole run with it — so each cell shows proved/bounded procedure
// counts and the exit cuts the proofs checked. Bounded procedures fell
// back to the structural checks; a nonzero bounded count is the signal
// to raise the validation budgets.
func ValidationTable(results []*pipeline.Result) string {
	schemes := pipeline.AllSchemes()
	var sb strings.Builder
	sb.WriteString("Translation validation: procedures proved equivalent to pristine IR (proved/bounded, cuts checked)\n")
	fmt.Fprintf(&sb, "%-8s", "bench")
	for _, s := range schemes {
		fmt.Fprintf(&sb, " %8s %6s", s, "cuts")
	}
	sb.WriteString("\n")
	totals := make([]validate.Stats, len(schemes))
	rows := 0
	for _, r := range results {
		line := fmt.Sprintf("%-8s", r.Name)
		any := false
		for i, s := range schemes {
			m := r.ByScheme[s]
			if m == nil || m.Validation == nil {
				line += fmt.Sprintf(" %8s %6s", "-", "-")
				continue
			}
			v := m.Validation
			line += fmt.Sprintf(" %8s %6d", fmt.Sprintf("%d/%d", v.Proved, v.Bounded), v.Cuts)
			totals[i].Add(*v)
			any = true
		}
		if any {
			sb.WriteString(line + "\n")
			rows++
		}
	}
	if rows == 0 {
		sb.WriteString("(no validation data: run with -validate)\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "%-8s", "total")
	for i := range schemes {
		t := totals[i]
		fmt.Fprintf(&sb, " %8s %6d", fmt.Sprintf("%d/%d", t.Proved, t.Bounded), t.Cuts)
	}
	sb.WriteString("\n")
	return sb.String()
}

// Summary prints the headline comparison: geometric-mean normalized
// cycles of each scheme vs M4, ideal and with cache.
func Summary(results []*pipeline.Result) string {
	schemes := []pipeline.Scheme{pipeline.SchemeM16, pipeline.SchemeP4e, pipeline.SchemeP4}
	var sb strings.Builder
	sb.WriteString("Summary: geometric mean of cycles normalized to M4\n")
	fmt.Fprintf(&sb, "%-6s %12s %12s\n", "scheme", "ideal cache", "with cache")
	for _, s := range schemes {
		gi, gc := 1.0, 1.0
		n := 0
		for _, r := range results {
			bm, m := r.ByScheme[pipeline.SchemeM4], r.ByScheme[s]
			if bm == nil || m == nil {
				continue
			}
			gi *= ratio(m.IdealCycles, bm.IdealCycles)
			gc *= ratio(m.Cycles, bm.Cycles)
			n++
		}
		if n == 0 {
			continue
		}
		gi = math.Pow(gi, 1/float64(n))
		gc = math.Pow(gc, 1/float64(n))
		fmt.Fprintf(&sb, "%-6s %12.3f %12.3f\n", s, gi, gc)
	}
	return sb.String()
}

// JSON serializes the full measurement set for machine consumption
// (plotting scripts, regression tracking).
func JSON(results []*pipeline.Result) (string, error) {
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}
