package stats

import (
	"strings"
	"testing"

	"pathsched/internal/pipeline"
	"pathsched/internal/sched"
)

// gapResults fabricates an exact-mode run: one benchmark with gap data
// on both schemes, one with data on M4 only (P4 came from a pre-exact
// cache, say), and one with none at all (its row must vanish).
func gapResults() []*pipeline.Result {
	mk := func(name string, gaps map[pipeline.Scheme]*sched.GapStats) *pipeline.Result {
		r := &pipeline.Result{Name: name, ByScheme: map[pipeline.Scheme]*pipeline.Measurement{}}
		for _, s := range []pipeline.Scheme{pipeline.SchemeM4, pipeline.SchemeP4} {
			r.ByScheme[s] = &pipeline.Measurement{Scheme: s, Gap: gaps[s]}
		}
		return r
	}
	return []*pipeline.Result{
		mk("aaa", map[pipeline.Scheme]*sched.GapStats{
			pipeline.SchemeM4: {Blocks: 10, Proved: 8, Bounded: 2, BoundedSearch: 1, Improved: 3, ListSpan: 100, ExactSpan: 95},
			pipeline.SchemeP4: {Blocks: 12, Proved: 12, Improved: 0, ListSpan: 80, ExactSpan: 80},
		}),
		mk("bbb", map[pipeline.Scheme]*sched.GapStats{
			pipeline.SchemeM4: {Blocks: 5, Proved: 4, Bounded: 1, Improved: 1, ListSpan: 60, ExactSpan: 57},
		}),
		mk("ccc", nil),
	}
}

// The gap table is part of the experiment surface (-gapstats); pin its
// exact rendering, bounded counts included, so accounting or format
// drift is a deliberate change.
func TestGapTableGolden(t *testing.T) {
	got := GapTable(gapResults())
	want := strings.Join([]string{
		"Gap to optimal: list-scheduler span as % of exact (branch-and-bound) span",
		"bench         M4    proved/bounded/impr      P4    proved/bounded/impr",
		"aaa       95.00%            8/   2/   3 100.00%           12/   0/   0",
		"bbb       95.00%            4/   1/   1       -                      -",
		"total     95.00%           12/   3/   4 100.00%           12/   0/   0",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("GapTable drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestGapTableEmpty(t *testing.T) {
	out := GapTable(fakeResults()) // no Gap fields anywhere
	if !strings.Contains(out, "no gap data") {
		t.Fatalf("empty gap table missing placeholder:\n%s", out)
	}
}
