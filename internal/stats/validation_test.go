package stats

import (
	"strings"
	"testing"

	"pathsched/internal/pipeline"
	"pathsched/internal/validate"
)

// validationResults fabricates a -validate run: one benchmark with
// stats on every scheme, one with a bounded procedure and a scheme that
// came out of a pre-validation cache (nil stats → "-"), and one with no
// validation data at all (its row must vanish).
func validationResults() []*pipeline.Result {
	mk := func(name string, vs map[pipeline.Scheme]*validate.Stats) *pipeline.Result {
		r := &pipeline.Result{Name: name, ByScheme: map[pipeline.Scheme]*pipeline.Measurement{}}
		for _, s := range pipeline.AllSchemes() {
			r.ByScheme[s] = &pipeline.Measurement{Scheme: s, Validation: vs[s]}
		}
		return r
	}
	full := func(proved, bounded int, cuts int64) *validate.Stats {
		return &validate.Stats{Procs: proved + bounded, Proved: proved, Bounded: bounded, Cuts: cuts}
	}
	return []*pipeline.Result{
		mk("aaa", map[pipeline.Scheme]*validate.Stats{
			pipeline.SchemeBB:  full(3, 0, 0),
			pipeline.SchemeM4:  full(3, 0, 17),
			pipeline.SchemeM16: full(3, 0, 29),
			pipeline.SchemeP4e: full(3, 0, 12),
			pipeline.SchemeP4:  full(3, 0, 14),
		}),
		mk("bbb", map[pipeline.Scheme]*validate.Stats{
			pipeline.SchemeM4: full(1, 1, 5),
			pipeline.SchemeP4: full(2, 0, 9),
		}),
		mk("ccc", nil),
	}
}

// The validation table is part of the experiment surface (-validate);
// pin its exact rendering, bounded counts included, so accounting or
// format drift is a deliberate change.
func TestValidationTableGolden(t *testing.T) {
	got := ValidationTable(validationResults())
	want := strings.Join([]string{
		"Translation validation: procedures proved equivalent to pristine IR (proved/bounded, cuts checked)",
		"bench          BB   cuts       M4   cuts      M16   cuts      P4e   cuts       P4   cuts",
		"aaa           3/0      0      3/0     17      3/0     29      3/0     12      3/0     14",
		"bbb             -      -      1/1      5        -      -        -      -      2/0      9",
		"total         3/0      0      4/1     22      3/0     29      3/0     12      5/0     23",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("ValidationTable drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestValidationTableEmpty(t *testing.T) {
	out := ValidationTable(fakeResults()) // no Validation fields anywhere
	if !strings.Contains(out, "no validation data") {
		t.Fatalf("empty validation table missing placeholder:\n%s", out)
	}
}
